"""Message types exchanged between HyperFile sites (paper §3.2).

The distributed algorithm needs only two kinds of message:

* :class:`DerefRequest` — "process this object for this query".  Carries
  the query identity and body (``Q.id``, ``Q.originator``, ``Q.body``,
  ``Q.size``) plus the dereferenced object's ``(id, start, iter#)``.  The
  query body is resent with every message — contexts make the *setup*
  cheap, not the message; the paper measures these at ~40 bytes.
* :class:`ResultBatch` — results flowing back to the originating site:
  object ids that passed all filters, values shipped by ``→`` retrievals,
  or (under the distributed-set optimisation of §5) just a local count.

Both carry an opaque ``term`` attachment owned by the termination detector
(credit fractions for the weighted scheme; nothing for Dijkstra–Scholten,
which uses explicit :class:`ControlMessage` acks instead).

An :class:`Envelope` wraps a payload with routing and an estimated wire
size, which the metrics layer aggregates into bytes-on-the-wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Tuple

from ..core.objects import HFObject
from ..core.oid import Oid
from ..core.program import Program
from ..engine.items import WorkItem

#: Termination-detector attachment (opaque to the transport).
TermAttachment = Mapping[str, Any]

_EMPTY_TERM: TermAttachment = {}


@dataclass(frozen=True)
class QueryId:
    """Globally unique query identity: ``Q.id @ Q.originator``."""

    seq: int
    originator: str

    def __str__(self) -> str:
        return f"q{self.seq}@{self.originator}"


@dataclass(frozen=True)
class DerefRequest:
    """Ship the query to the site holding a dereferenced object."""

    qid: QueryId
    program: Program
    item: WorkItem
    term: TermAttachment = field(default_factory=dict)

    def wire_size(self) -> int:
        # qid + (oid, start, iter#) + encoded body.  Matches the paper's
        # observation that its experiment queries were ~40 bytes.
        return 12 + 16 + self.item.start.bit_length() // 8 + self.program.wire_size()


@dataclass(frozen=True)
class ResultBatch:
    """Results (or a count) flowing back to ``Q.originator``.

    ``oids`` — objects that passed every filter; ``emissions`` — values
    produced by ``→`` retrieval filters, tagged with their target variable
    so the originator can bind them; ``count_only``/``count`` — the
    distributed-set optimisation: the site reports how many results it is
    holding instead of shipping them.
    """

    qid: QueryId
    oids: Tuple[Oid, ...] = ()
    emissions: Tuple[Tuple[str, Any], ...] = ()
    count_only: bool = False
    count: int = 0
    term: TermAttachment = field(default_factory=dict)
    #: Piggybacked :class:`repro.cache.SiteSummary` (typed loosely so the
    #: message layer never imports the cache package — codec does).
    summary: Optional[Any] = None

    @property
    def item_count(self) -> int:
        """Entries the originator must integrate (drives the cost model)."""
        if self.count_only:
            return 1
        return len(self.oids) + len(self.emissions)

    def wire_size(self) -> int:
        extra = self.summary.wire_size() if self.summary is not None else 0
        if self.count_only:
            return 20 + extra
        size = 16 + extra
        for oid in self.oids:
            size += len(oid.birth_site) + 12
        for target, value in self.emissions:
            size += len(target) + _value_wire_size(value)
        return size


#: One batch-level dedup hint: ``(oid_key, mark_key)`` — an object key plus
#: the sender's mark-table key (position, or (position, iters)) recorded for
#: it.  The receiver may suppress sending that exact work item back to the
#: hint's sender: it is provably already marked there.
MarkHint = Tuple[Tuple[str, int], tuple]


@dataclass(frozen=True)
class BatchedQuery:
    """Several coalesced dereference requests for one query, one frame.

    The batching layer's replacement for a burst of per-pointer
    :class:`DerefRequest` messages to the same destination: the query body
    ships once, each item keeps its *own* termination attachment (credit
    was split per item at enqueue time, so the weighted detector's
    conservation stays exact under batching), and ``marked_hints`` carries
    the sender's recent mark-table entries so the destination can avoid
    re-admitting objects remotely (Bloofi-style summary shipping).
    """

    qid: QueryId
    program: Program
    items: Tuple[WorkItem, ...]
    terms: Tuple[TermAttachment, ...]
    marked_hints: Tuple[MarkHint, ...] = ()

    def __post_init__(self) -> None:
        if len(self.items) != len(self.terms):
            raise ValueError(
                f"batched frame has {len(self.items)} items but {len(self.terms)} attachments"
            )
        if not self.items:
            raise ValueError("a batched frame must carry at least one item")

    def wire_size(self) -> int:
        # qid + body once, then one compact record per item + per hint.
        size = 12 + self.program.wire_size()
        for item in self.items:
            size += 16 + item.start.bit_length() // 8
        size += 10 * len(self.marked_hints)
        return size


@dataclass(frozen=True)
class BatchedResults:
    """Several coalesced :class:`ResultBatch` messages, one frame.

    Produced by the batching layer when result flushes to the same
    destination accumulate within the linger window (multi-query
    workloads); the destination ingests each inner batch exactly as if it
    had arrived alone.
    """

    batches: Tuple["ResultBatch", ...]

    def __post_init__(self) -> None:
        if not self.batches:
            raise ValueError("a batched-results frame must carry at least one batch")

    @property
    def qid(self) -> QueryId:
        """First inner query id (tracing attribution)."""
        return self.batches[0].qid

    def wire_size(self) -> int:
        return 4 + sum(batch.wire_size() for batch in self.batches)


@dataclass(frozen=True)
class SeedFromSaved:
    """Distributed-set follow-up (paper §5's proposed optimisation).

    Asks a site to seed a *new* query's working set from the result
    partition it retained for a previous query — "the portion of this set
    at each site would be used to initialize the working set at that site
    for the new query".  No object ids cross the network.
    """

    qid: QueryId
    program: Program
    source_qid: QueryId
    term: TermAttachment = field(default_factory=dict)

    def wire_size(self) -> int:
        return 24 + self.program.wire_size()


@dataclass(frozen=True)
class ControlMessage:
    """Termination-detector control traffic (e.g. Dijkstra–Scholten acks)."""

    qid: QueryId
    kind: str
    payload: Any = None

    def wire_size(self) -> int:
        return 24


@dataclass(frozen=True)
class PurgeContext:
    """Originator -> participant: the query terminated; drop its context.

    The paper: "The context Q is discarded only on global termination of
    the query" — which the originator alone detects, so it must tell the
    participants.  Sent to every site that contributed results (the
    originator learns participants from ResultBatch sources).  Purging is
    best-effort: a lost purge leaves a stale context, never a wrong
    answer.
    """

    qid: QueryId

    def wire_size(self) -> int:
        return 16


@dataclass(frozen=True)
class FetchRequest:
    """Whole-object retrieval: "retrieve a file given its name".

    ``reply_to`` names the requesting site; forwarding hops (stale hints,
    migrated objects) preserve it so the reply goes straight back to the
    requester, not to the last forwarder.
    """

    request_id: int
    oid: Oid
    reply_to: str = ""

    def wire_size(self) -> int:
        return 12 + len(self.oid.birth_site) + 12 + len(self.reply_to)


@dataclass(frozen=True)
class FetchReply:
    """File-server baseline: the whole object (or None) shipped back."""

    request_id: int
    obj: Optional[HFObject]

    def wire_size(self) -> int:
        return 12 + (self.obj.size_bytes if self.obj is not None else 0)


@dataclass(frozen=True)
class Undeliverable:
    """A work message bounced back to its sender: the destination site was
    down when it arrived (think TCP RST / ICMP unreachable).

    Carrying the original envelope lets the sender's termination detector
    re-absorb the credit/deficit it attached, so queries survive mid-query
    site failures with partial results instead of hanging (the paper's
    autonomy requirement taken one step further than its prototype).
    """

    original: "Envelope"

    def wire_size(self) -> int:
        return 16

    @property
    def qid(self):
        """The bounced query's id, so tracing stays attributable."""
        return getattr(self.original.payload, "qid", "")


@dataclass(frozen=True)
class Heartbeat:
    """One gossip round's liveness evidence from ``origin``.

    ``counters`` is the sender's merged heartbeat-counter table (its own
    counter freshly ticked).  Receivers element-wise-max it into their
    merged table; a member whose counter stops advancing everywhere is
    eventually declared permanently failed.  Carried as a real frame so
    the detector only ever acts on *delivered* evidence — a partitioned
    or frozen site stops producing it, which is exactly the signal.
    """

    origin: str
    counters: Tuple[Tuple[str, int], ...] = ()

    def wire_size(self) -> int:
        size = 4 + len(self.origin)
        for site, _count in self.counters:
            size += len(site) + 4
        return size


@dataclass(frozen=True)
class ViewChange:
    """A membership view broadcast: epoch + the full status table.

    The table is tiny (sites are few), so the whole view ships rather
    than a delta — receivers can adopt it idempotently and out-of-order
    arrivals resolve by epoch comparison.
    """

    epoch: int
    statuses: Tuple[Tuple[str, str], ...]
    reason: str = ""

    def wire_size(self) -> int:
        size = 8 + len(self.reason)
        for site, status in self.statuses:
            size += len(site) + len(status) + 2
        return size


@dataclass(frozen=True)
class Envelope:
    """A routed message: source site, destination site, payload.

    ``spans`` is the tracing span context riding the message (see
    :mod:`repro.tracing`): ``spans[0]`` is the span id of the send event
    that shipped this envelope, and for batched frames ``spans[1:]``
    carry the per-item cause spans, so the receiver can fan a frame into
    per-item children of the right senders' steps.  ``None`` whenever
    tracing is off; the field never contributes to ``size_bytes``, so a
    traced run moves exactly the same modelled bytes as an untraced one.

    ``src_epoch`` piggybacks the sender's store mutation epoch when
    caching is enabled (``None`` otherwise — an uncached run's envelopes
    are indistinguishable from today's).  Receivers use it to invalidate
    stale summaries and cached query answers; like ``spans`` it never
    contributes to ``size_bytes``.

    ``tried`` is the replica-routing hint (``None`` on unreplicated
    deployments): holder sites already attempted for the work this
    envelope carries.  Failover excludes them when picking the next
    replica, so a dereference bouncing between two half-dead holders
    cannot ping-pong; an :class:`Undeliverable` bounce hands the set
    back via the wrapped original envelope.

    ``priority`` is the QoS service class of the query this envelope
    belongs to (``"interactive"`` or ``"batch"``, see :mod:`repro.qos`),
    and ``pressure`` piggybacks the sender's backpressure state (1 =
    above its high watermark, 0 = clear) so upstream senders can throttle
    their batching toward pressured sites.  Both are ``None`` whenever
    ``qos=None`` — a QoS-free run's envelopes are byte-for-byte the
    pre-QoS ones — and neither contributes to ``size_bytes``.
    """

    src: str
    dst: str
    payload: Any
    spans: Optional[Tuple[int, ...]] = None
    src_epoch: Optional[int] = None
    tried: Optional[Tuple[str, ...]] = None
    priority: Optional[str] = None
    pressure: Optional[int] = None

    @property
    def size_bytes(self) -> int:
        wire = getattr(self.payload, "wire_size", None)
        return wire() if callable(wire) else 64

    def __repr__(self) -> str:
        return f"Envelope({self.src} -> {self.dst}: {type(self.payload).__name__})"


def _value_wire_size(value: Any) -> int:
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, Oid):
        return len(value.birth_site) + 12
    return 8
