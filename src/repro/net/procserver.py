"""One OS process per site: the asyncio transport's multi-core mode.

``ClusterConfig(processes=True)`` makes ``transport="async"`` build a
:class:`ProcessCluster` instead of the shared-loop inline deployment:
every site is a spawned child process running its own event loop, frame
server and :class:`~repro.server.node.ServerNode`, so site CPU work
runs in genuine parallel (no shared GIL).  Inter-site query traffic
uses exactly the same framed envelope protocol as the inline and socket
transports — the child reuses the :class:`~repro.net.asyncio_cluster`
site machinery verbatim against a small duck-typed runtime.

What changes is everything that silently leaned on shared memory.  The
parent holds no stores and no nodes; each shared-memory convenience now
has an explicit wire representation on a per-child *control* channel
(same length-prefixed framing, a small tag-based control vocabulary):

* ``HELLO`` / ``PEERS`` — bootstrap handshake: each child reports its
  data port, the parent broadcasts the full port map;
* ``CREATE`` / ``GET`` / ``REPLACE`` — store access, proxied by
  :class:`StoreProxy` (objects cross as codec bytes, not references);
* ``SUBMIT`` / ``SUBMIT_SAVED`` / ``EXPIRE`` — query dispatch hooks;
* ``SET_DOWN`` / ``SET_UP`` — availability broadcasts, so every child's
  sender drops frames to a down peer exactly like the inline transport;
* ``STATS`` — per-site :class:`~repro.server.stats.NodeStats` snapshots
  for ``total_stats``;
* ``COMPLETE`` — the child-side originator pushes the finished
  :class:`~repro.engine.results.QueryResult` (with partition counts)
  back unprompted; the parent turns it into the usual
  :class:`~repro.api.QueryOutcome`.

The parent serialises requests per child (one outstanding request, FIFO
replies), so replies need no correlation ids; ``COMPLETE`` pushes are
routed out-of-band by the per-child reader thread.

Deliberately unsupported here (the config is rejected loudly, see
``docs/ASYNC.md``): replication, the reliable channel, fault plans,
tracing and the metrics registry — each assumes shared objects between
sites and has no wire representation yet.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import queue
import socket
import threading
import time
from dataclasses import fields
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..api import QueryOutcome
from ..config import ClusterConfig
from ..core.oid import Oid
from ..core.program import Program
from ..core.tuples import HFTuple
from ..engine.results import ExecutionStats, QueryResult, ResultSet
from ..errors import HyperFileError, ObjectNotFound, TransportClosed, UnknownSite
from ..server.stats import NodeStats
from .codec import (
    _read_object,
    _read_program,
    _read_qid,
    _read_value,
    _write_object,
    _write_program,
    _write_qid,
    _write_value,
    _Reader,
    _Writer,
)
from .common import WallClockQueries
from .messages import QueryId
from .sockets import recv_frame, send_frame

# -- control vocabulary ------------------------------------------------------

_C_HELLO = 0x01
_C_PEERS = 0x02
_C_CREATE = 0x03
_C_GET = 0x04
_C_REPLACE = 0x05
_C_SUBMIT = 0x06
_C_SUBMIT_SAVED = 0x07
_C_EXPIRE = 0x08
_C_SET_DOWN = 0x09
_C_SET_UP = 0x0A
_C_STATS = 0x0B
_C_SHUTDOWN = 0x0C
_C_OK = 0x20
_C_ERR = 0x21
_C_OBJECT = 0x22
_C_STATS_REPLY = 0x23
_C_COMPLETE = 0x30

#: Error types the control channel can re-raise parent-side by name.
_ERROR_TYPES = {
    "ObjectNotFound": ObjectNotFound,
    "UnknownSite": UnknownSite,
    "HyperFileError": HyperFileError,
}


def _encode_stats(stats: NodeStats) -> bytes:
    """Field-driven NodeStats encoding (new counters ride automatically)."""
    w = _Writer()
    named = [(f.name, getattr(stats, f.name)) for f in fields(stats)]
    w.varint(len(named))
    for name, value in named:
        w.text(name)
        if isinstance(value, dict):
            _write_value(w, tuple(sorted(value.items())))
        else:
            _write_value(w, value)
    return w.getvalue()


def _decode_stats(r: _Reader) -> NodeStats:
    stats = NodeStats()
    for _ in range(r.varint()):
        name = r.text()
        value = _read_value(r)
        if isinstance(getattr(stats, name, None), dict):
            value = dict(value)
        setattr(stats, name, value)
    return stats


def _encode_result(qid: QueryId, result: QueryResult, partition_counts) -> bytes:
    w = _Writer()
    w.byte(_C_COMPLETE)
    _write_qid(w, qid)
    _write_value(w, tuple(result.oids))
    w.varint(len(result.retrieved))
    for target in sorted(result.retrieved):
        w.text(target)
        _write_value(w, tuple(result.retrieved[target]))
    for f in fields(ExecutionStats):
        w.varint(getattr(result.stats, f.name))
    w.byte(1 if result.partial else 0)
    w.text(result.partial_reason or "")
    counts = dict(partition_counts) if partition_counts else {}
    w.varint(len(counts))
    for site in sorted(counts):
        w.text(site)
        w.varint(counts[site])
    return w.getvalue()


def _decode_result(r: _Reader) -> Tuple[QueryId, QueryResult, Optional[Dict[str, int]]]:
    qid = _read_qid(r)
    oids = ResultSet()
    oids.extend(_read_value(r))
    retrieved = {r.text(): list(_read_value(r)) for _ in range(r.varint())}
    stats = ExecutionStats(**{f.name: r.varint() for f in fields(ExecutionStats)})
    partial = r.byte() == 1
    reason = r.text() or None
    counts = {r.text(): r.varint() for _ in range(r.varint())} or None
    result = QueryResult(
        oids=oids, retrieved=retrieved, stats=stats, partial=partial, partial_reason=reason
    )
    return qid, result, counts


def _err_frame(exc: BaseException) -> bytes:
    w = _Writer()
    w.byte(_C_ERR)
    w.text(type(exc).__name__)
    w.text(str(exc))
    return w.getvalue()


def _raise_err(r: _Reader) -> None:
    name = r.text()
    raise _ERROR_TYPES.get(name, HyperFileError)(r.text())


# --------------------------------------------------------------------------
# child process
# --------------------------------------------------------------------------


class _ChildRuntime:
    """The duck-typed cluster surface the reused site machinery needs.

    :class:`~repro.net.asyncio_cluster._AsyncSite` and ``_PeerLink`` talk
    to their owning cluster through exactly these members; providing them
    here lets the child run the same drain/send/framing code as the
    inline transport, unchanged.
    """

    def __init__(self, site: str, names: List[str], config: ClusterConfig) -> None:
        self.site = site
        self.names = names
        self.config = config
        self.ports: Dict[str, int] = {}
        self.fault_plan = None
        self.messages_dropped = 0
        self._down: set = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def sites(self) -> List[str]:
        return list(self.names)

    def is_down(self, site: str) -> bool:
        return site in self._down

    def port_of(self, site: str) -> int:
        try:
            return self.ports[site]
        except KeyError:
            raise UnknownSite(site) from None

    def _endpoint_for(self, site: str):
        return None

    def _reliable_ingest(self, env) -> None:  # pragma: no cover - reliable is rejected
        raise HyperFileError("reliable channel is not supported in process mode")


def _child_main(site: str, names: List[str], parent_port: int, config: ClusterConfig) -> None:
    """Entry point of one spawned site process."""
    asyncio.run(_child_serve(site, names, parent_port, config))


async def _child_serve(
    site: str, names: List[str], parent_port: int, config: ClusterConfig
) -> None:
    from ..server.node import ServerNode
    from ..sim.costs import FREE_COSTS
    from ..storage.memstore import MemStore
    from ..termination.base import make_strategy
    from .asyncio_cluster import _AsyncSite
    from .codec import FrameReader, FRAME_HEADER

    runtime = _ChildRuntime(site, names, config)
    runtime._loop = asyncio.get_running_loop()
    store = MemStore(site)

    control_writer: Optional[asyncio.StreamWriter] = None

    def push_complete(qid: QueryId, result: QueryResult) -> None:
        counts = None
        ctx = node.contexts.get(qid)
        if ctx is not None and ctx.partition_counts:
            counts = ctx.partition_counts
        payload = _encode_result(qid, result, counts)
        control_writer.write(FRAME_HEADER.pack(len(payload)) + payload)

    node = ServerNode(
        site,
        store,
        costs=FREE_COSTS,
        termination=make_strategy(config.termination),
        discipline=config.discipline,
        result_mode=config.result_mode,
        on_query_complete=push_complete,
        is_site_up=lambda s: not runtime.is_down(s),
        batching=config.batching,
        caching=config.caching,
        qos=config.qos,
    )
    node.now_fn = time.monotonic
    asite = _AsyncSite(node, runtime)
    await asite.bootstrap()
    asite._drain_task = asyncio.get_running_loop().create_task(asite.drain())

    reader, control_writer = await asyncio.open_connection(config.host, parent_port)
    hello = _Writer()
    hello.byte(_C_HELLO)
    hello.text(site)
    hello.varint(asite.port)
    payload = hello.getvalue()
    control_writer.write(FRAME_HEADER.pack(len(payload)) + payload)

    frames = FrameReader()
    running = True
    while running:
        chunk = await reader.read(64 * 1024)
        if not chunk:
            break
        for frame in frames.feed(chunk):
            reply = _handle_control(frame, runtime, asite, store)
            if reply is _SHUTDOWN:
                reply = bytes((_C_OK,))
                running = False
            if reply is not None:
                control_writer.write(FRAME_HEADER.pack(len(reply)) + reply)
        await control_writer.drain()
    asite.shutdown()
    control_writer.close()


_SHUTDOWN = object()


def _handle_control(frame, runtime: _ChildRuntime, asite, store):
    """Process one control frame; returns the reply bytes (or None)."""
    r = _Reader(frame)
    tag = r.byte()
    try:
        if tag == _C_PEERS:
            runtime.ports = {r.text(): r.varint() for _ in range(r.varint())}
            return bytes((_C_OK,))
        if tag == _C_CREATE:
            tuples = [HFTuple(r.text(), _read_value(r), _read_value(r)) for _ in range(r.varint())]
            size_hint = _read_value(r)
            obj = store.create(tuples, size_hint=size_hint)
            w = _Writer()
            w.byte(_C_OBJECT)
            _write_object(w, obj)
            return w.getvalue()
        if tag == _C_GET:
            obj = store.get(_read_value(r))
            w = _Writer()
            w.byte(_C_OBJECT)
            _write_object(w, obj)
            return w.getvalue()
        if tag == _C_REPLACE:
            store.replace(_read_object(r))
            return bytes((_C_OK,))
        if tag == _C_SUBMIT:
            qid = _read_qid(r)
            program = _read_program(r)
            initial = list(_read_value(r))
            priority = r.text() or None
            asite.submit(qid, program, initial, priority)
            return bytes((_C_OK,))
        if tag == _C_SUBMIT_SAVED:
            qid = _read_qid(r)
            program = _read_program(r)
            source_qid = _read_qid(r)
            asite.submit_from_saved(qid, program, source_qid)
            return bytes((_C_OK,))
        if tag == _C_EXPIRE:
            asite.expire(_read_qid(r))
            return bytes((_C_OK,))
        if tag == _C_SET_DOWN:
            target = r.text()
            runtime._down.add(target)
            if target == runtime.site:
                asite.up_event.clear()
            return bytes((_C_OK,))
        if tag == _C_SET_UP:
            target = r.text()
            runtime._down.discard(target)
            if target == runtime.site:
                asite.up_event.set()
                asite.inbox.put_nowait(None)
            return bytes((_C_OK,))
        if tag == _C_STATS:
            return bytes((_C_STATS_REPLY,)) + _encode_stats(asite.node.stats)
        if tag == _C_SHUTDOWN:
            return _SHUTDOWN
        raise HyperFileError(f"unknown control tag 0x{tag:02x}")
    except Exception as exc:  # surfaced parent-side as a typed error
        return _err_frame(exc)


# --------------------------------------------------------------------------
# parent side
# --------------------------------------------------------------------------


class StoreProxy:
    """Parent-side handle on one child's object store.

    Same ``create`` / ``get`` / ``replace`` surface as
    :class:`~repro.storage.memstore.MemStore`; every call is one control
    round-trip, objects crossing as codec bytes.
    """

    def __init__(self, cluster: "ProcessCluster", site: str) -> None:
        self._cluster = cluster
        self._site = site

    def create(self, tuples: Iterable[HFTuple] = (), size_hint: Optional[int] = None):
        w = _Writer()
        w.byte(_C_CREATE)
        items = list(tuples)
        w.varint(len(items))
        for t in items:
            w.text(t.type)
            _write_value(w, t.key)
            _write_value(w, t.data)
        _write_value(w, size_hint)
        reply = self._cluster._request(self._site, w.getvalue(), expect=_C_OBJECT)
        return _read_object(reply)

    def get(self, oid: Oid):
        w = _Writer()
        w.byte(_C_GET)
        _write_value(w, oid)
        reply = self._cluster._request(self._site, w.getvalue(), expect=_C_OBJECT)
        return _read_object(reply)

    def replace(self, obj) -> None:
        w = _Writer()
        w.byte(_C_REPLACE)
        _write_object(w, obj)
        self._cluster._request(self._site, w.getvalue(), expect=_C_OK)


class _RemoteSiteHandle:
    """Stand-in for a ServerNode in the parent's ``nodes`` map.

    The shared query surface only touches ``contexts`` (for credit
    diagnostics, empty here: the contexts live in the child), so this
    carries just enough shape to keep the common code honest.
    """

    def __init__(self, site: str) -> None:
        self.site = site
        self.contexts: Dict = {}


class _ChildLink:
    """Parent bookkeeping for one child: process, control socket, reader."""

    def __init__(self, site: str, process, conn: socket.socket, data_port: int) -> None:
        self.site = site
        self.process = process
        self.conn = conn
        self.data_port = data_port
        self.lock = threading.Lock()
        self.replies: "queue.Queue" = queue.Queue()
        self.reader: Optional[threading.Thread] = None


class ProcessCluster(WallClockQueries):
    """The asyncio transport with one OS process per site.

    Built by ``AsyncCluster(..., config=ClusterConfig(processes=True))``
    (or ``transport="async"`` with that config); not normally
    instantiated directly.
    """

    #: Control-channel budget for one request round-trip.
    RPC_TIMEOUT_S = 30.0

    def __init__(
        self, sites: Union[int, Iterable[str]] = 3, config: Optional[ClusterConfig] = None
    ) -> None:
        config = config if config is not None else ClusterConfig(processes=True)
        config.require_default(
            "costs", "mark_granularity", "gc_contexts",
            "replication", "reliable", "fault_plan",
            transport="async (process mode)",
        )
        self.config = config
        names = [f"site{i}" for i in range(sites)] if isinstance(sites, int) else list(sites)
        if not names:
            raise ValueError("a cluster needs at least one site")
        self._init_queries(config.qos)
        self._closed = False
        self._down: set = set()
        self._down_lock = threading.Lock()
        self.replication = None
        self.undeliverable: List = []
        self.nodes: Dict[str, _RemoteSiteHandle] = {n: _RemoteSiteHandle(n) for n in names}

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((config.host, 0))
        listener.listen(len(names))
        parent_port = listener.getsockname()[1]

        # spawn (not fork): the parent may carry live threads and event
        # loops from other clusters; inheriting them is a deadlock trap.
        ctx = multiprocessing.get_context("spawn")
        procs = {
            name: ctx.Process(
                target=_child_main,
                args=(name, names, parent_port, config),
                name=f"hf-proc-{name}",
                daemon=True,
            )
            for name in names
        }
        self._links: Dict[str, _ChildLink] = {}
        try:
            for proc in procs.values():
                proc.start()
            listener.settimeout(60.0)
            for _ in names:
                conn, _addr = listener.accept()
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                frame = recv_frame(conn)
                r = _Reader(frame)
                if r.byte() != _C_HELLO:
                    raise HyperFileError("child handshake out of order")
                site = r.text()
                port = r.varint()
                self._links[site] = _ChildLink(site, procs[site], conn, port)
        except Exception:
            for proc in procs.values():
                if proc.is_alive():
                    proc.terminate()
            raise
        finally:
            listener.close()

        for link in self._links.values():
            link.reader = threading.Thread(
                target=self._reader_loop, args=(link,),
                name=f"hf-proc-reader-{link.site}", daemon=True,
            )
            link.reader.start()

        peers = _Writer()
        peers.byte(_C_PEERS)
        peers.varint(len(self._links))
        for site, link in self._links.items():
            peers.text(site)
            peers.varint(link.data_port)
        frame = peers.getvalue()
        for site in self._links:
            self._request(site, frame, expect=_C_OK)

    # -- control channel -------------------------------------------------

    def _reader_loop(self, link: _ChildLink) -> None:
        try:
            while True:
                frame = recv_frame(link.conn)
                if frame is None:
                    return
                if frame[0] == _C_COMPLETE:
                    r = _Reader(frame)
                    r.byte()
                    qid, result, counts = _decode_result(r)
                    self._on_remote_complete(qid, result, counts)
                else:
                    link.replies.put(frame)
        except (OSError, HyperFileError):
            return

    def _request(self, site: str, frame: bytes, expect: int) -> _Reader:
        link = self._links.get(site)
        if link is None:
            raise UnknownSite(site)
        with link.lock:
            if self._closed:
                raise TransportClosed("cluster is closed")
            send_frame(link.conn, frame)
            try:
                reply = link.replies.get(timeout=self.RPC_TIMEOUT_S)
            except queue.Empty:
                raise HyperFileError(f"no control reply from {site}") from None
        r = _Reader(reply)
        tag = r.byte()
        if tag == _C_ERR:
            _raise_err(r)
        if tag != expect:
            raise HyperFileError(f"unexpected control reply 0x{tag:02x} from {site}")
        return r

    def _on_remote_complete(
        self, qid: QueryId, result: QueryResult, counts: Optional[Dict[str, int]]
    ) -> None:
        info = self._inflight.pop(qid, None)
        outcome = QueryOutcome(
            qid=qid,
            result=result,
            submitted_at=info.submitted_at if info is not None else 0.0,
            completed_at=time.monotonic(),
            partition_counts=counts,
        )
        self._outcomes[qid] = outcome
        self._completions.put((qid, outcome))

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        shutdown = bytes((_C_SHUTDOWN,))
        for link in self._links.values():
            # Don't interleave with an in-flight request on the same
            # socket; a child that never frees the lock gets terminated.
            acquired = link.lock.acquire(timeout=2.0)
            try:
                send_frame(link.conn, shutdown)
            except OSError:
                pass
            finally:
                if acquired:
                    link.lock.release()
        for link in self._links.values():
            link.process.join(timeout=5.0)
            if link.process.is_alive():
                link.process.terminate()
            try:
                link.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data ------------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        return list(self.nodes)

    def store(self, site: str) -> StoreProxy:
        if site not in self._links:
            raise UnknownSite(site)
        return StoreProxy(self, site)

    def migrate(self, oid: Oid, to_site: str) -> Oid:
        raise HyperFileError("migrate is not supported in process mode")

    # -- availability ----------------------------------------------------

    def is_up(self, site: str) -> bool:
        with self._down_lock:
            return site not in self._down

    def is_down(self, site: str) -> bool:
        return not self.is_up(site)

    def _broadcast_availability(self, tag: int, site: str) -> None:
        w = _Writer()
        w.byte(tag)
        w.text(site)
        frame = w.getvalue()
        for target in self._links:
            self._request(target, frame, expect=_C_OK)

    def set_down(self, site: str) -> None:
        """Freeze a site's process; every child drops frames to it."""
        if site not in self._links:
            raise UnknownSite(site)
        with self._down_lock:
            self._down.add(site)
        self._broadcast_availability(_C_SET_DOWN, site)

    def set_up(self, site: str) -> None:
        if site not in self._links:
            raise UnknownSite(site)
        with self._down_lock:
            self._down.discard(site)
        self._broadcast_availability(_C_SET_UP, site)

    # -- observability ---------------------------------------------------

    def total_stats(self) -> NodeStats:
        merged = NodeStats()
        stats_req = bytes((_C_STATS,))
        for site in self._links:
            reply = self._request(site, stats_req, expect=_C_STATS_REPLY)
            merged.merge(_decode_stats(reply))
        return merged

    def attach_tracer(self, tracer) -> None:
        raise HyperFileError("tracing is not supported in process mode")

    def detach_tracer(self) -> None:
        pass

    def enable_metrics(self, registry=None):
        raise HyperFileError("the metrics registry is not supported in process mode")

    def metrics_snapshot(self):
        return None

    # -- dispatch hooks --------------------------------------------------

    def _dispatch_submit(
        self,
        origin: str,
        qid: QueryId,
        program: Program,
        initial: List[Oid],
        priority: Optional[str] = None,
    ) -> None:
        w = _Writer()
        w.byte(_C_SUBMIT)
        _write_qid(w, qid)
        _write_program(w, program)
        _write_value(w, tuple(initial))
        w.text(priority or "")
        self._request(origin, w.getvalue(), expect=_C_OK)

    def _dispatch_submit_from_saved(
        self, origin: str, qid: QueryId, program: Program, source_qid: QueryId
    ) -> None:
        w = _Writer()
        w.byte(_C_SUBMIT_SAVED)
        _write_qid(w, qid)
        _write_program(w, program)
        _write_qid(w, source_qid)
        self._request(origin, w.getvalue(), expect=_C_OK)

    def _dispatch_expire(self, origin: str, qid: QueryId) -> None:
        w = _Writer()
        w.byte(_C_EXPIRE)
        _write_qid(w, qid)
        self._request(origin, w.getvalue(), expect=_C_OK)
