"""One OS process per site: the asyncio transport's multi-core mode.

``ClusterConfig(processes=True)`` makes ``transport="async"`` build a
:class:`ProcessCluster` instead of the shared-loop inline deployment:
every site is a spawned child process running its own event loop, frame
server and :class:`~repro.server.node.ServerNode`, so site CPU work
runs in genuine parallel (no shared GIL).  Inter-site query traffic
uses exactly the same framed envelope protocol as the inline and socket
transports — the child reuses the :class:`~repro.net.asyncio_cluster`
site machinery verbatim against a small duck-typed runtime.

What changes is everything that silently leaned on shared memory.  The
parent holds no stores and no nodes; each shared-memory convenience now
has an explicit wire representation on a per-child *control* channel
(same length-prefixed framing, a small tag-based control vocabulary):

* ``HELLO`` / ``PEERS`` — bootstrap handshake: each child reports its
  data port, the parent broadcasts the full port map;
* ``CREATE`` / ``GET`` / ``REPLACE`` — store access, proxied by
  :class:`StoreProxy` (objects cross as codec bytes, not references);
* ``SUBMIT`` / ``SUBMIT_SAVED`` / ``EXPIRE`` — query dispatch hooks;
* ``SET_DOWN`` / ``SET_UP`` — availability broadcasts, so every child's
  sender drops frames to a down peer exactly like the inline transport;
* ``STATS`` — per-site :class:`~repro.server.stats.NodeStats` snapshots
  for ``total_stats``;
* ``COMPLETE`` — the child-side originator pushes the finished
  :class:`~repro.engine.results.QueryResult` (with partition counts,
  plus any trace events buffered since the last drain) back unprompted;
  the parent turns it into the usual :class:`~repro.api.QueryOutcome`;
* ``TRACE_ON`` / ``TRACE_OFF`` / ``TRACE_DRAIN`` — cross-process span
  shipping: each child buffers :class:`~repro.tracing.TraceEvent`
  records in a span-id namespace of its own (child *i* of *n* sites
  allocates ``i+1, i+1+m, ...`` with stride ``m = 2n+1``), so the
  parent ingests shipped events into the user's tracer verbatim and
  the causal tree reconstructs with no id remapping;
* ``METRICS_ON`` / ``METRICS_SNAP`` — each child runs its own
  :class:`~repro.metrics.MetricsRegistry`; the parent merges child
  snapshots into one cluster view (``merge_snapshots``);
* ``STATS_PUSH`` — with ``stats_stream_s`` configured each child pushes
  periodic :meth:`NodeStats.sample` rows out-of-band; the reader thread
  lands them in the parent's :class:`~repro.metrics.collect.StatsTimeline`;
* ``FLIGHT_SNAP`` — fetch a child's flight-recorder ring (the per-site
  bounded span buffer armed by ``ClusterConfig.flight_recorder``); the
  parent merges the rings and writes the postmortem dump when a query
  dies badly;
* ``FAULTS`` — ships a :class:`~repro.faults.plan.FaultPlan`'s link
  chaos parameters (the plan object itself is not picklable); every
  drop/duplicate/reorder/jitter decision is then made child-side by the
  sending child's own plan copy, exactly where the inline transports
  make it; scheduled crashes stay parent-side as timers driving the
  ``SET_DOWN``/``SET_UP`` broadcasts (semantically identical — a crash
  *is* a set_down everywhere); ``FAULT_STATS`` pulls each child's chaos
  counters back so the parent's plan object reports cluster totals;
* ``PUT`` / ``CONTAINS`` / ``REMOVE`` / ``OIDS`` / ``OBJECTS`` /
  ``STORE_META`` — the rest of the :class:`~repro.storage.memstore.MemStore`
  surface, so :class:`StoreProxy` is a full drop-in (workload loading,
  migration and replication all run against it unchanged);
* ``FWD`` — the per-site forwarding table (record/drop/lookup), so
  :func:`~repro.naming.names.migrate_object` maintains the paper's
  naming invariants across process boundaries;
* ``REPL_DIR`` / ``EPOCH`` — replication: the parent runs the ordinary
  :class:`~repro.replication.ReplicationManager` against the store
  proxies, and every directory change (holder list, version counter)
  broadcasts to all children, which keep a local
  :class:`~repro.naming.directory.ReplicaDirectory` replica — so
  read-anycast routing and ``tried``-exclusion failover run child-side
  with zero extra round-trips; ``EPOCH`` fans write epochs out to every
  child's cache-invalidation listener (the PR 4/5 epoch listeners);
* ``RELIABLE_ON`` — arms a per-child
  :class:`~repro.faults.reliable.ReliableEndpoint` (ack + retransmit +
  dedup state lives child-side, timers on the child's loop); a
  retransmit give-up bounces detector credit child-side exactly like
  the inline transports *and* pushes a ``GIVE_UP`` note to the parent,
  which records it in ``cluster.undeliverable`` for diagnostics;
* ``CREDIT`` — per-query termination-credit snapshots, merged by the
  parent into the same ``credit_deficit`` number the inline transports
  compute from shared memory.

The parent serialises requests per child (one outstanding request, FIFO
replies), so replies need no correlation ids; ``COMPLETE``,
``STATS_PUSH`` and ``GIVE_UP`` pushes are routed out-of-band by the
per-child reader thread.  Trace drains and flight snaps run on the
client thread (never the reader thread, which must stay free to route
the replies).

A child that dies is detected two ways: its reader thread sees EOF and
fails the link immediately (in-flight requests and waits raise
:class:`~repro.errors.ChildProcessDied` / ``TerminationLost`` naming
the site), and a request that times out checks ``process.is_alive()``
before reporting anything vaguer.

The only configs still rejected are the simulator-only knobs (``costs``,
``mark_granularity``, ``gc_contexts``) — and those fail at
``ClusterConfig`` construction with :class:`~repro.errors.ConfigError`,
before any process is spawned (see ``docs/ASYNC.md``).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import queue
import socket
import threading
import time
from dataclasses import dataclass, fields, replace
from fractions import Fraction
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..api import QueryOutcome
from ..config import ClusterConfig
from ..core.oid import Oid
from ..core.program import Program
from ..core.tuples import HFTuple
from ..engine.results import ExecutionStats, QueryResult, ResultSet
from ..errors import (
    ChildProcessDied,
    ConfigError,
    DuplicateObject,
    HyperFileError,
    ObjectNotFound,
    TerminationLost,
    TransportClosed,
    UnknownSite,
)
from ..faults.plan import FaultPlan
from ..faults.reliable import ReliableConfig
from ..naming.directory import ReplicaDirectory
from ..replication import ReplicationManager
from ..server.stats import NodeStats
from ..tracing import KINDS, FlightRecorder, QueryTracer, TeeTracer, TraceEvent, _jsonable
from .codec import (
    _read_object,
    _read_program,
    _read_qid,
    _read_value,
    _write_object,
    _write_program,
    _write_qid,
    _write_value,
    _Reader,
    _Writer,
)
from .common import WallClockQueries
from .messages import QueryId
from .sockets import recv_frame, send_frame

# -- control vocabulary ------------------------------------------------------

_C_HELLO = 0x01
_C_PEERS = 0x02
_C_CREATE = 0x03
_C_GET = 0x04
_C_REPLACE = 0x05
_C_SUBMIT = 0x06
_C_SUBMIT_SAVED = 0x07
_C_EXPIRE = 0x08
_C_SET_DOWN = 0x09
_C_SET_UP = 0x0A
_C_STATS = 0x0B
_C_SHUTDOWN = 0x0C
_C_TRACE_ON = 0x0D
_C_TRACE_OFF = 0x0E
_C_TRACE_DRAIN = 0x0F
_C_CREDIT = 0x10
_C_FAULT_STATS = 0x11
_C_METRICS_ON = 0x12
_C_METRICS_SNAP = 0x13
_C_FLIGHT_SNAP = 0x14
_C_FAULTS = 0x15
_C_PUT = 0x16
_C_CONTAINS = 0x17
_C_REMOVE = 0x18
_C_OIDS = 0x19
_C_STORE_META = 0x1A
_C_OBJECTS = 0x1B
_C_FWD = 0x1C
_C_REPL_DIR = 0x1D
_C_EPOCH = 0x1E
_C_RELIABLE_ON = 0x1F
_C_OK = 0x20
_C_ERR = 0x21
_C_OBJECT = 0x22
_C_STATS_REPLY = 0x23
_C_TRACE_EVENTS = 0x24
_C_METRICS_REPLY = 0x25
_C_VALUE = 0x26
_C_OBJECTS_REPLY = 0x27
_C_CREDIT_REPLY = 0x28
_C_MEMB_VIEW = 0x29

_C_COMPLETE = 0x30
_C_STATS_PUSH = 0x31
_C_GIVE_UP = 0x32

#: ``FWD`` sub-operations (one tag, a sub-op byte).
_FWD_RECORD, _FWD_DROP, _FWD_LOOKUP = 0, 1, 2

#: Error types the control channel can re-raise parent-side by name.
_ERROR_TYPES = {
    "ObjectNotFound": ObjectNotFound,
    "DuplicateObject": DuplicateObject,
    "UnknownSite": UnknownSite,
    "ConfigError": ConfigError,
    "HyperFileError": HyperFileError,
}


def _encode_stats(stats: NodeStats) -> bytes:
    """Field-driven NodeStats encoding (new counters ride automatically)."""
    w = _Writer()
    named = [(f.name, getattr(stats, f.name)) for f in fields(stats)]
    w.varint(len(named))
    for name, value in named:
        w.text(name)
        if isinstance(value, dict):
            _write_value(w, tuple(sorted(value.items())))
        else:
            _write_value(w, value)
    return w.getvalue()


def _decode_stats(r: _Reader) -> NodeStats:
    stats = NodeStats()
    for _ in range(r.varint()):
        name = r.text()
        value = _read_value(r)
        if isinstance(getattr(stats, name, None), dict):
            value = dict(value)
        setattr(stats, name, value)
    return stats


def _events_to_json(events: List[TraceEvent]) -> str:
    """Trace events as one JSON document (the span-shipping wire form).

    Events are JSON-able by construction (``_jsonable`` stringifies
    anything exotic in the detail map) — the same flattening the jsonl
    exporter applies, so a shipped event round-trips identically to a
    dumped one.
    """
    return json.dumps(
        [
            {
                "t": e.time, "site": e.site, "kind": e.kind, "qid": e.qid,
                "span": e.span, "parent": e.parent,
                "detail": {k: _jsonable(v) for k, v in e.detail.items()},
            }
            for e in events
        ]
    )


def _events_from_json(text: str) -> List[TraceEvent]:
    if not text:
        return []
    return [
        TraceEvent(
            time=rec["t"], site=rec["site"], kind=rec["kind"], qid=rec["qid"],
            detail=rec["detail"], span=rec["span"], parent=rec["parent"],
        )
        for rec in json.loads(text)
    ]


def _encode_result(
    qid: QueryId, result: QueryResult, partition_counts, trace_json: str = ""
) -> bytes:
    w = _Writer()
    w.byte(_C_COMPLETE)
    _write_qid(w, qid)
    _write_value(w, tuple(result.oids))
    w.varint(len(result.retrieved))
    for target in sorted(result.retrieved):
        w.text(target)
        _write_value(w, tuple(result.retrieved[target]))
    for f in fields(ExecutionStats):
        w.varint(getattr(result.stats, f.name))
    w.byte(1 if result.partial else 0)
    w.text(result.partial_reason or "")
    counts = dict(partition_counts) if partition_counts else {}
    w.varint(len(counts))
    for site in sorted(counts):
        w.text(site)
        w.varint(counts[site])
    w.text(trace_json)
    return w.getvalue()


def _decode_result(
    r: _Reader,
) -> Tuple[QueryId, QueryResult, Optional[Dict[str, int]], str]:
    qid = _read_qid(r)
    oids = ResultSet()
    oids.extend(_read_value(r))
    retrieved = {r.text(): list(_read_value(r)) for _ in range(r.varint())}
    stats = ExecutionStats(**{f.name: r.varint() for f in fields(ExecutionStats)})
    partial = r.byte() == 1
    reason = r.text() or None
    counts = {r.text(): r.varint() for _ in range(r.varint())} or None
    trace_json = r.text()
    result = QueryResult(
        oids=oids, retrieved=retrieved, stats=stats, partial=partial, partial_reason=reason
    )
    return qid, result, counts, trace_json


def _err_frame(exc: BaseException) -> bytes:
    w = _Writer()
    w.byte(_C_ERR)
    w.text(type(exc).__name__)
    w.text(str(exc))
    return w.getvalue()


def _raise_err(r: _Reader) -> None:
    name = r.text()
    raise _ERROR_TYPES.get(name, HyperFileError)(r.text())


# --------------------------------------------------------------------------
# child process
# --------------------------------------------------------------------------


class _ChildRuntime:
    """The duck-typed cluster surface the reused site machinery needs.

    :class:`~repro.net.asyncio_cluster._AsyncSite` and ``_PeerLink`` talk
    to their owning cluster through exactly these members; providing them
    here lets the child run the same drain/send/framing code as the
    inline transport, unchanged.
    """

    def __init__(self, site: str, names: List[str], config: ClusterConfig) -> None:
        self.site = site
        self.names = names
        self.config = config
        self.ports: Dict[str, int] = {}
        self.fault_plan = None
        self.messages_dropped = 0
        self._down: set = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: Local copy of the cluster-wide replica directory, kept in sync
        #: by REPL_DIR broadcasts; ``None`` when replication is off.
        self.replicas: Optional[ReplicaDirectory] = None
        #: This site's half of the reliable channel (RELIABLE_ON or the
        #: shipped config arm it); ``None`` means raw delivery.
        self._endpoint = None
        #: Envelopes this child's reliable channel gave up on (the
        #: inline transports' ``cluster.undeliverable``, kept per child
        #: and mirrored to the parent via GIVE_UP pushes).
        self.undeliverable: List = []
        #: Writes one out-of-band frame to the control socket (set once
        #: the control connection exists); GIVE_UP pushes ride this.
        self.send_oob: Optional[Callable[[bytes], None]] = None
        # Telemetry plane (all driven over the control channel).
        #: Shipping tracer installed by TRACE_ON; its events[cursor:]
        #: are what drains and completion piggybacks carry to the parent.
        self.tracer: Optional[QueryTracer] = None
        self.trace_cursor = 0
        #: Per-site flight-recorder ring, armed from the shipped config.
        self.recorder: Optional[FlightRecorder] = None
        self.metrics = None

    def take_trace_events(self) -> List[TraceEvent]:
        """Events buffered since the last take (cursor-based, so the
        completion piggyback and explicit drains never double-ship)."""
        if self.tracer is None:
            return []
        events = self.tracer.events[self.trace_cursor:]
        self.trace_cursor = len(self.tracer.events)
        return events

    @property
    def sites(self) -> List[str]:
        return list(self.names)

    def is_down(self, site: str) -> bool:
        return site in self._down

    def port_of(self, site: str) -> int:
        try:
            return self.ports[site]
        except KeyError:
            raise UnknownSite(site) from None

    def _endpoint_for(self, site: str):
        """The sending site's reliable endpoint — in a child there is
        exactly one site, so this is ours or nothing."""
        return self._endpoint if site == self.site else None

    def _reliable_ingest(self, env) -> None:
        """A ReliableData/ReliableAck frame arrived on the wire."""
        if self._endpoint is None:
            # A peer is running the channel and we are not: the config
            # diverged between processes, which should be impossible
            # (the same ClusterConfig ships to every child).
            raise HyperFileError(
                f"reliable frame at {self.site} but the channel is not enabled here"
            )
        self._endpoint.on_wire(env)


def _install_reliable(runtime: _ChildRuntime, asite, rconfig: ReliableConfig) -> None:
    """Arm this child's half of the reliable channel.

    Mirrors the inline transport's ``enable_reliable`` wiring exactly,
    one site at a time: acks, retransmit timers and dedup state all live
    on this child's event loop.  A give-up recovers detector credit
    child-side (an ``Undeliverable`` bounce into our own inbox, exactly
    like the inline ``_give_up``) and additionally pushes a GIVE_UP note
    so the parent's ``undeliverable`` diagnostics stay truthful.
    """
    from ..faults.reliable import ReliableEndpoint
    from .messages import BatchedQuery, DerefRequest, Envelope, SeedFromSaved, Undeliverable

    loop = runtime._loop
    node = asite.node

    def give_up(env) -> None:
        runtime.undeliverable.append(env)
        if runtime.send_oob is not None:
            w = _Writer()
            w.byte(_C_GIVE_UP)
            w.text(runtime.site)
            w.text(env.src)
            w.text(env.dst)
            w.text(type(env.payload).__name__)
            w.text(str(getattr(env.payload, "qid", "") or ""))
            runtime.send_oob(w.getvalue())
        if isinstance(env.payload, (DerefRequest, BatchedQuery, SeedFromSaved)):
            asite.inbox.put_nowait(
                Envelope(env.dst, env.src, Undeliverable(env), spans=env.spans)
            )

    runtime._endpoint = ReliableEndpoint(
        runtime.site,
        clock=time.monotonic,
        # Everything that schedules runs on this child's loop thread.
        scheduler=lambda delay, fn: loop.call_later(delay, fn),
        send_raw=asite._send_raw,
        # on_wire runs inside the drain task, which steps the node next.
        deliver_up=node.on_message,
        node=node,
        config=rconfig,
        on_give_up=give_up,
    )


def _child_main(site: str, names: List[str], parent_port: int, config: ClusterConfig) -> None:
    """Entry point of one spawned site process."""
    asyncio.run(_child_serve(site, names, parent_port, config))


async def _child_serve(
    site: str, names: List[str], parent_port: int, config: ClusterConfig
) -> None:
    from ..server.node import ServerNode
    from ..sim.costs import FREE_COSTS
    from ..storage.memstore import MemStore
    from ..termination.base import make_strategy
    from .asyncio_cluster import _AsyncSite
    from .codec import FrameReader, FRAME_HEADER

    runtime = _ChildRuntime(site, names, config)
    runtime._loop = asyncio.get_running_loop()
    store = MemStore(site)

    control_writer: Optional[asyncio.StreamWriter] = None

    def push_complete(qid: QueryId, result: QueryResult) -> None:
        counts = None
        ctx = node.contexts.get(qid)
        if ctx is not None and ctx.partition_counts:
            counts = ctx.partition_counts
        # Piggyback the spans buffered since the last drain: the common
        # case (one query at a time) ships its whole trace with zero
        # extra round-trips; the parent's post-wait drain picks up the
        # other children's events.
        shipped = runtime.take_trace_events()
        payload = _encode_result(qid, result, counts, _events_to_json(shipped) if shipped else "")
        control_writer.write(FRAME_HEADER.pack(len(payload)) + payload)

    # Replication: every child keeps a full local replica directory (it
    # is small — holder lists and version counters), synced by REPL_DIR
    # broadcasts from the parent's manager.  Routing and failover then
    # consult it locally, exactly like the inline transports.
    if config.replication is not None and config.replication.enabled:
        runtime.replicas = ReplicaDirectory()

    node = ServerNode(
        site,
        store,
        costs=FREE_COSTS,
        termination=make_strategy(config.termination),
        discipline=config.discipline,
        result_mode=config.result_mode,
        on_query_complete=push_complete,
        is_site_up=lambda s: not runtime.is_down(s),
        batching=config.batching,
        caching=config.caching,
        replicas=runtime.replicas,
        qos=config.qos,
    )
    node.now_fn = time.monotonic
    # Span-id namespacing: with n sites and m = 2n + 1 lanes, child i's
    # shipping tracer allocates from lane i+1 and its flight recorder
    # from lane n+1+i; the parent keeps lane 0 (start=m, step=m) for its
    # own rare allocations.  Shipped span ids never collide anywhere.
    index = names.index(site)
    lanes = 2 * len(names) + 1
    if config.flight_recorder is not None:
        runtime.recorder = FlightRecorder(
            replace(config.flight_recorder, dump_dir=None),  # parent writes the files
            span_start=len(names) + 1 + index,
            span_step=lanes,
        )
        runtime.recorder.now_fn = time.monotonic
        node.tracer = runtime.recorder
    asite = _AsyncSite(node, runtime)
    await asite.bootstrap()
    asite._drain_task = asyncio.get_running_loop().create_task(asite.drain())

    if config.reliable:
        _install_reliable(
            runtime,
            asite,
            config.reliable if isinstance(config.reliable, ReliableConfig) else ReliableConfig(),
        )

    reader, control_writer = await asyncio.open_connection(config.host, parent_port)

    def send_oob(payload: bytes) -> None:
        control_writer.write(FRAME_HEADER.pack(len(payload)) + payload)

    runtime.send_oob = send_oob
    hello = _Writer()
    hello.byte(_C_HELLO)
    hello.text(site)
    hello.varint(asite.port)
    payload = hello.getvalue()
    control_writer.write(FRAME_HEADER.pack(len(payload)) + payload)

    async def stats_pusher(period_s: float) -> None:
        """Push one NodeStats sample per period, out-of-band (STATS_PUSH
        frames are routed by the parent's reader thread, never queued as
        a reply)."""
        while True:
            await asyncio.sleep(period_s)
            sample = node.stats.sample()
            sample["work_depth"] = node.work_depth
            w = _Writer()
            w.byte(_C_STATS_PUSH)
            w.text(site)
            w.text(json.dumps({"t": time.monotonic(), "sample": sample}))
            push = w.getvalue()
            control_writer.write(FRAME_HEADER.pack(len(push)) + push)
            if node.tracer is not None:
                node.tracer.emit(site, "stats_push", "", sites=1)

    pusher_task = None
    if config.stats_stream_s is not None:
        pusher_task = asyncio.get_running_loop().create_task(
            stats_pusher(config.stats_stream_s)
        )

    frames = FrameReader()
    running = True
    while running:
        chunk = await reader.read(64 * 1024)
        if not chunk:
            break
        for frame in frames.feed(chunk):
            reply = _handle_control(frame, runtime, asite, store)
            if reply is _SHUTDOWN:
                reply = bytes((_C_OK,))
                running = False
            if reply is not None:
                control_writer.write(FRAME_HEADER.pack(len(reply)) + reply)
        await control_writer.drain()
    if pusher_task is not None:
        pusher_task.cancel()
    if runtime._endpoint is not None:
        runtime._endpoint.close()
    asite.shutdown()
    control_writer.close()


_SHUTDOWN = object()


def _handle_control(frame, runtime: _ChildRuntime, asite, store):
    """Process one control frame; returns the reply bytes (or None)."""
    r = _Reader(frame)
    tag = r.byte()
    try:
        if tag == _C_PEERS:
            runtime.ports = {r.text(): r.varint() for _ in range(r.varint())}
            return bytes((_C_OK,))
        if tag == _C_CREATE:
            tuples = [HFTuple(r.text(), _read_value(r), _read_value(r)) for _ in range(r.varint())]
            size_hint = _read_value(r)
            obj = store.create(tuples, size_hint=size_hint)
            w = _Writer()
            w.byte(_C_OBJECT)
            _write_object(w, obj)
            return w.getvalue()
        if tag == _C_GET:
            obj = store.get(_read_value(r))
            w = _Writer()
            w.byte(_C_OBJECT)
            _write_object(w, obj)
            return w.getvalue()
        if tag == _C_REPLACE:
            store.replace(_read_object(r))
            return bytes((_C_OK,))
        if tag == _C_SUBMIT:
            qid = _read_qid(r)
            program = _read_program(r)
            initial = list(_read_value(r))
            priority = r.text() or None
            tenant = r.text() or None
            asite.submit(qid, program, initial, priority, tenant)
            return bytes((_C_OK,))
        if tag == _C_SUBMIT_SAVED:
            qid = _read_qid(r)
            program = _read_program(r)
            source_qid = _read_qid(r)
            asite.submit_from_saved(qid, program, source_qid)
            return bytes((_C_OK,))
        if tag == _C_EXPIRE:
            asite.expire(_read_qid(r))
            return bytes((_C_OK,))
        if tag == _C_SET_DOWN:
            target = r.text()
            runtime._down.add(target)
            if target == runtime.site:
                asite.up_event.clear()
            return bytes((_C_OK,))
        if tag == _C_SET_UP:
            target = r.text()
            runtime._down.discard(target)
            if target == runtime.site:
                asite.up_event.set()
                asite.inbox.put_nowait(None)
            return bytes((_C_OK,))
        if tag == _C_STATS:
            return bytes((_C_STATS_REPLY,)) + _encode_stats(asite.node.stats)
        if tag == _C_TRACE_ON:
            kinds = [r.text() for _ in range(r.varint())] or None
            span_start = r.varint()
            span_step = r.varint()
            tracer = QueryTracer(kinds, span_start=span_start, span_step=span_step)
            tracer.now_fn = time.monotonic
            runtime.tracer = tracer
            runtime.trace_cursor = 0
            asite.node.tracer = (
                TeeTracer(tracer, runtime.recorder) if runtime.recorder is not None else tracer
            )
            return bytes((_C_OK,))
        if tag == _C_TRACE_OFF:
            runtime.tracer = None
            runtime.trace_cursor = 0
            asite.node.tracer = runtime.recorder
            return bytes((_C_OK,))
        if tag == _C_TRACE_DRAIN:
            w = _Writer()
            w.byte(_C_TRACE_EVENTS)
            w.text(_events_to_json(runtime.take_trace_events()))
            return w.getvalue()
        if tag == _C_METRICS_ON:
            from ..metrics.registry import MetricsRegistry

            runtime.metrics = MetricsRegistry()
            asite.node.metrics = runtime.metrics
            return bytes((_C_OK,))
        if tag == _C_METRICS_SNAP:
            if runtime.metrics is None:
                snap = {"metrics": []}
            else:
                runtime.metrics.publish_node_stats(runtime.site, asite.node.stats)
                snap = runtime.metrics.snapshot()
            w = _Writer()
            w.byte(_C_METRICS_REPLY)
            w.text(json.dumps(snap))
            return w.getvalue()
        if tag == _C_FLIGHT_SNAP:
            events = list(runtime.recorder.events) if runtime.recorder is not None else []
            w = _Writer()
            w.byte(_C_TRACE_EVENTS)
            w.text(_events_to_json(events))
            return w.getvalue()
        if tag == _C_FAULTS:
            seed = r.varint()
            drop, duplicate, reorder, jitter, window = (_read_value(r) for _ in range(5))
            plan = FaultPlan(
                seed=seed, drop=drop, duplicate=duplicate, reorder=reorder,
                delay_jitter_s=jitter, reorder_window_s=window,
            )
            for _ in range(r.varint()):
                a, b = r.text(), r.text()
                plan.link(
                    a, b,
                    drop=_read_value(r), duplicate=_read_value(r),
                    reorder=_read_value(r), delay_jitter_s=_read_value(r),
                )
            for _ in range(r.varint()):
                plan.partition(r.text(), r.text())
            runtime.fault_plan = plan
            return bytes((_C_OK,))
        if tag == _C_FAULT_STATS:
            plan = runtime.fault_plan
            w = _Writer()
            w.byte(_C_VALUE)
            _write_value(
                w,
                (
                    runtime.messages_dropped,
                    plan.decisions if plan is not None else 0,
                    plan.dropped if plan is not None else 0,
                    plan.duplicated if plan is not None else 0,
                    plan.delayed if plan is not None else 0,
                    plan.partition_drops if plan is not None else 0,
                ),
            )
            return w.getvalue()
        if tag == _C_PUT:
            obj = _read_object(r)
            overwrite = r.byte() == 1
            store.put(obj, overwrite=overwrite)
            return bytes((_C_OK,))
        if tag == _C_CONTAINS:
            w = _Writer()
            w.byte(_C_VALUE)
            _write_value(w, store.contains(_read_value(r)))
            return w.getvalue()
        if tag == _C_REMOVE:
            obj = store.remove(_read_value(r))
            w = _Writer()
            w.byte(_C_OBJECT)
            _write_object(w, obj)
            return w.getvalue()
        if tag == _C_OIDS:
            w = _Writer()
            w.byte(_C_VALUE)
            _write_value(w, tuple(store.oids()))
            return w.getvalue()
        if tag == _C_STORE_META:
            w = _Writer()
            w.byte(_C_VALUE)
            _write_value(w, (store.epoch, store.alloc_high, len(store)))
            return w.getvalue()
        if tag == _C_OBJECTS:
            objs = list(store.objects())
            w = _Writer()
            w.byte(_C_OBJECTS_REPLY)
            w.varint(len(objs))
            for obj in objs:
                _write_object(w, obj)
            return w.getvalue()
        if tag == _C_FWD:
            op = r.byte()
            table = asite.node.forwarding
            if op == _FWD_RECORD:
                table.record(_read_value(r), r.text())
                return bytes((_C_OK,))
            if op == _FWD_DROP:
                table.drop(_read_value(r))
                return bytes((_C_OK,))
            w = _Writer()
            w.byte(_C_VALUE)
            _write_value(w, table.lookup(_read_value(r)))
            return w.getvalue()
        if tag == _C_REPL_DIR:
            oid = _read_value(r)
            version = r.varint()
            holders = tuple(r.text() for _ in range(r.varint()))
            if runtime.replicas is not None:
                if version == 0:  # drop sentinel: the entry is gone
                    runtime.replicas.drop(oid)
                else:
                    runtime.replicas.record(oid, holders, version)
            return bytes((_C_OK,))
        if tag == _C_EPOCH:
            target = r.text()
            epoch = r.varint()
            asite.node.observe_epoch(target, epoch)
            return bytes((_C_OK,))
        if tag == _C_MEMB_VIEW:
            # The parent's membership view, as a full status table: the
            # child's routing guard must skip leaving/departed peers.
            statuses = {r.text(): r.text() for _ in range(r.varint())}
            asite.node.membership_status = lambda site: statuses.get(site, "departed")
            return bytes((_C_OK,))
        if tag == _C_RELIABLE_ON:
            base = _read_value(r)
            cap = _read_value(r)
            retries = r.varint()
            _install_reliable(
                runtime, asite,
                ReliableConfig(base_backoff_s=base, max_backoff_s=cap, max_retries=retries),
            )
            return bytes((_C_OK,))
        if tag == _C_CREDIT:
            qid = _read_qid(r)
            ctx = asite.node.contexts.get(qid)
            w = _Writer()
            w.byte(_C_CREDIT_REPLY)
            if ctx is None:
                w.byte(0)
            else:
                state = ctx.term_state
                credit = getattr(state, "credit", None)
                recovered = getattr(state, "recovered", None)
                w.byte(1)
                _write_value(w, credit if isinstance(credit, Fraction) else None)
                w.byte(1 if getattr(state, "is_originator", False) else 0)
                _write_value(w, recovered if isinstance(recovered, Fraction) else None)
            return w.getvalue()
        if tag == _C_SHUTDOWN:
            return _SHUTDOWN
        raise HyperFileError(f"unknown control tag 0x{tag:02x}")
    except Exception as exc:  # surfaced parent-side as a typed error
        return _err_frame(exc)


# --------------------------------------------------------------------------
# parent side
# --------------------------------------------------------------------------


class StoreProxy:
    """Parent-side handle on one child's object store.

    The complete public :class:`~repro.storage.memstore.MemStore`
    surface (``tests/net/test_procserver.py`` introspects both classes
    so any future drift fails loudly); every call is one control
    round-trip, objects crossing as codec bytes.  ``scan`` filters
    client-side over one ``OBJECTS`` fetch — the predicate is a Python
    callable and does not cross the wire.
    """

    def __init__(self, cluster: "ProcessCluster", site: str) -> None:
        self._cluster = cluster
        self._site = site

    @property
    def site(self) -> str:
        """The owning site's name (same surface as MemStore)."""
        return self._site

    @property
    def epoch(self) -> int:
        """The child store's current mutation epoch."""
        return self._meta()[0]

    @property
    def alloc_high(self) -> int:
        """Exclusive upper bound on local ids minted at the child."""
        return self._meta()[1]

    def _meta(self) -> Tuple[int, int, int]:
        reply = self._cluster._request(self._site, bytes((_C_STORE_META,)), expect=_C_VALUE)
        return _read_value(reply)

    def create(self, tuples: Iterable[HFTuple] = (), size_hint: Optional[int] = None):
        w = _Writer()
        w.byte(_C_CREATE)
        items = list(tuples)
        w.varint(len(items))
        for t in items:
            w.text(t.type)
            _write_value(w, t.key)
            _write_value(w, t.data)
        _write_value(w, size_hint)
        reply = self._cluster._request(self._site, w.getvalue(), expect=_C_OBJECT)
        return _read_object(reply)

    def put(self, obj, overwrite: bool = False) -> None:
        w = _Writer()
        w.byte(_C_PUT)
        _write_object(w, obj)
        w.byte(1 if overwrite else 0)
        self._cluster._request(self._site, w.getvalue(), expect=_C_OK)

    def get(self, oid: Oid):
        w = _Writer()
        w.byte(_C_GET)
        _write_value(w, oid)
        reply = self._cluster._request(self._site, w.getvalue(), expect=_C_OBJECT)
        return _read_object(reply)

    def replace(self, obj) -> None:
        w = _Writer()
        w.byte(_C_REPLACE)
        _write_object(w, obj)
        self._cluster._request(self._site, w.getvalue(), expect=_C_OK)

    def contains(self, oid: Oid) -> bool:
        w = _Writer()
        w.byte(_C_CONTAINS)
        _write_value(w, oid)
        reply = self._cluster._request(self._site, w.getvalue(), expect=_C_VALUE)
        return bool(_read_value(reply))

    def remove(self, oid: Oid):
        w = _Writer()
        w.byte(_C_REMOVE)
        _write_value(w, oid)
        reply = self._cluster._request(self._site, w.getvalue(), expect=_C_OBJECT)
        return _read_object(reply)

    def oids(self) -> List[Oid]:
        reply = self._cluster._request(self._site, bytes((_C_OIDS,)), expect=_C_VALUE)
        return list(_read_value(reply))

    def objects(self) -> Iterator:
        reply = self._cluster._request(self._site, bytes((_C_OBJECTS,)), expect=_C_OBJECTS_REPLY)
        return iter([_read_object(reply) for _ in range(reply.varint())])

    def scan(self, predicate) -> Iterator:
        for obj in self.objects():
            if predicate(obj):
                yield obj

    def __len__(self) -> int:
        return self._meta()[2]

    def __contains__(self, oid: object) -> bool:
        return isinstance(oid, Oid) and self.contains(oid)

    def __repr__(self) -> str:
        return f"StoreProxy(site={self._site!r})"


class _ForwardingProxy:
    """Parent-side handle on one child node's forwarding table, so
    migration maintains the paper's naming invariants across processes
    (:func:`~repro.naming.names.migrate_object` runs against these
    unchanged)."""

    def __init__(self, cluster: "ProcessCluster", site: str) -> None:
        self._cluster = cluster
        self._site = site

    @property
    def site(self) -> str:
        return self._site

    def _op(self, op: int, oid: Oid, new_site: str = "") -> _Reader:
        w = _Writer()
        w.byte(_C_FWD)
        w.byte(op)
        _write_value(w, oid)
        if op == _FWD_RECORD:
            w.text(new_site)
        expect = _C_OK if op in (_FWD_RECORD, _FWD_DROP) else _C_VALUE
        return self._cluster._request(self._site, w.getvalue(), expect=expect)

    def record(self, oid: Oid, new_site: str) -> None:
        self._op(_FWD_RECORD, oid, new_site)

    def drop(self, oid: Oid) -> None:
        self._op(_FWD_DROP, oid)

    def lookup(self, oid: Oid) -> Optional[str]:
        return _read_value(self._op(_FWD_LOOKUP, oid))

    def __repr__(self) -> str:
        return f"_ForwardingProxy(site={self._site!r})"


class _SyncedDirectory(ReplicaDirectory):
    """The parent's replica directory, broadcast to every child.

    The ordinary :class:`~repro.replication.ReplicationManager` mutates
    this exactly as it would a shared-memory directory; each change
    additionally ships as one REPL_DIR frame per child, so the children's
    local copies — the ones read-anycast routing and ``tried``-exclusion
    failover consult on the query path — never lag a write.
    """

    def __init__(self, cluster: "ProcessCluster") -> None:
        super().__init__()
        self._cluster = cluster

    def record(self, oid: Oid, sites, version: Optional[int] = None) -> None:
        super().record(oid, sites, version)
        self._push(oid)

    def bump_version(self, oid: Oid) -> int:
        version = super().bump_version(oid)
        self._push(oid)
        return version

    def drop(self, oid: Oid) -> None:
        super().drop(oid)
        self._push(oid)

    def _push(self, oid: Oid) -> None:
        entry = self._entries.get(oid.key())  # not sites_of: no counter noise
        w = _Writer()
        w.byte(_C_REPL_DIR)
        _write_value(w, oid)
        if entry is None:  # dropped: version 0 is the tombstone
            w.varint(0)
            w.varint(0)
        else:
            w.varint(entry.version)
            w.varint(len(entry.sites))
            for site in entry.sites:
                w.text(site)
        self._cluster._broadcast(w.getvalue())


@dataclass
class _UndeliveredNote:
    """Parent-side record of one child-side reliable give-up.

    The envelope itself stays in the child (``runtime.undeliverable``
    holds the real object); this note carries what diagnostics need —
    who gave up on what — without shipping payload bytes.
    """

    site: str
    src: str
    dst: str
    kind: str
    qid: str


class _ChildDeath:
    """Completion-queue marker: the originator's process died mid-query."""

    class _Result:
        partial = False
        partial_reason = None

    def __init__(self, site: str) -> None:
        self.site = site
        self.result = self._Result()


#: Reply-queue sentinel a dying reader thread leaves for a blocked request.
_LINK_LOST = object()


class _RemoteSiteHandle:
    """Stand-in for a ServerNode in the parent's ``nodes`` map.

    The shared query surface only touches ``contexts`` (for credit
    diagnostics, empty here: the contexts live in the child), so this
    carries just enough shape to keep the common code honest.
    """

    def __init__(self, site: str) -> None:
        self.site = site
        self.contexts: Dict = {}


class _ChildLink:
    """Parent bookkeeping for one child: process, control socket, reader."""

    def __init__(self, site: str, process, conn: socket.socket, data_port: int) -> None:
        self.site = site
        self.process = process
        self.conn = conn
        self.data_port = data_port
        self.lock = threading.Lock()
        self.replies: "queue.Queue" = queue.Queue()
        self.reader: Optional[threading.Thread] = None
        #: Set by the reader thread on its way out; requests against a
        #: dead link fail fast with ChildProcessDied instead of timing out.
        self.dead = False


class ProcessCluster(WallClockQueries):
    """The asyncio transport with one OS process per site.

    Built by ``AsyncCluster(..., config=ClusterConfig(processes=True))``
    (or ``transport="async"`` with that config); not normally
    instantiated directly.
    """

    #: Control-channel budget for one request round-trip.
    RPC_TIMEOUT_S = 30.0

    def __init__(
        self, sites: Union[int, Iterable[str]] = 3, config: Optional[ClusterConfig] = None
    ) -> None:
        config = config if config is not None else ClusterConfig(processes=True)
        # ClusterConfig.__post_init__ rejects these when processes=True is
        # set on the config itself; this catches a default-mode config
        # handed straight to ProcessCluster.
        config.require_default(
            "costs", "mark_granularity", "gc_contexts",
            transport="async (process mode)",
        )
        self.config = config
        names = [f"site{i}" for i in range(sites)] if isinstance(sites, int) else list(sites)
        if not names:
            raise ValueError("a cluster needs at least one site")
        self._init_queries(config.qos)
        self._closed = False
        self._down: set = set()
        self._down_lock = threading.Lock()
        self.replication = None
        self.undeliverable: List = []
        self.nodes: Dict[str, _RemoteSiteHandle] = {n: _RemoteSiteHandle(n) for n in names}
        self._tracer: Optional[QueryTracer] = None
        self.fault_plan: Optional[FaultPlan] = None
        self._fault_timers: List[threading.Timer] = []
        self._init_telemetry(config)

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((config.host, 0))
        listener.listen(len(names))
        parent_port = listener.getsockname()[1]

        # spawn (not fork): the parent may carry live threads and event
        # loops from other clusters; inheriting them is a deadlock trap.
        ctx = multiprocessing.get_context("spawn")
        # The fault plan holds a lock and an RNG — not picklable; its
        # link-chaos parameters ship over the control channel instead
        # (use_faults below), and crashes fire from parent-side timers.
        child_config = config.replace(fault_plan=None)
        procs = {
            name: ctx.Process(
                target=_child_main,
                args=(name, names, parent_port, child_config),
                name=f"hf-proc-{name}",
                daemon=True,
            )
            for name in names
        }
        self._links: Dict[str, _ChildLink] = {}
        try:
            for proc in procs.values():
                proc.start()
            listener.settimeout(60.0)
            for _ in names:
                conn, _addr = listener.accept()
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                frame = recv_frame(conn)
                r = _Reader(frame)
                if r.byte() != _C_HELLO:
                    raise HyperFileError("child handshake out of order")
                site = r.text()
                port = r.varint()
                self._links[site] = _ChildLink(site, procs[site], conn, port)
        except Exception:
            for proc in procs.values():
                if proc.is_alive():
                    proc.terminate()
            raise
        finally:
            listener.close()

        for link in self._links.values():
            link.reader = threading.Thread(
                target=self._reader_loop, args=(link,),
                name=f"hf-proc-reader-{link.site}", daemon=True,
            )
            link.reader.start()

        peers = _Writer()
        peers.byte(_C_PEERS)
        peers.varint(len(self._links))
        for site, link in self._links.items():
            peers.text(site)
            peers.varint(link.data_port)
        frame = peers.getvalue()
        for site in self._links:
            self._request(site, frame, expect=_C_OK)

        # The shared data-management surface (WallClockQueries.migrate,
        # replicate_all, ReplicationManager) runs against these proxies
        # exactly as it runs against MemStore/ForwardingTable inline.
        self.stores: Dict[str, StoreProxy] = {n: StoreProxy(self, n) for n in names}
        self.forwarding: Dict[str, _ForwardingProxy] = {
            n: _ForwardingProxy(self, n) for n in names
        }
        if config.replication is not None and config.replication.enabled:
            self.replication = ReplicationManager(
                config.replication, self.stores, self.forwarding, _SyncedDirectory(self)
            )
            self.replication.add_epoch_listener(self._broadcast_epoch)
        self._init_membership(config)
        self._reliable_enabled = bool(config.reliable)

        if config.fault_plan is not None:
            self.use_faults(config.fault_plan)

    # -- control channel -------------------------------------------------

    def _reader_loop(self, link: _ChildLink) -> None:
        try:
            while True:
                frame = recv_frame(link.conn)
                if frame is None:
                    return
                if frame[0] == _C_COMPLETE:
                    r = _Reader(frame)
                    r.byte()
                    qid, result, counts, trace_json = _decode_result(r)
                    self._on_remote_complete(qid, result, counts, trace_json)
                elif frame[0] == _C_STATS_PUSH:
                    r = _Reader(frame)
                    r.byte()
                    self._on_stats_push(r.text(), r.text())
                elif frame[0] == _C_GIVE_UP:
                    r = _Reader(frame)
                    r.byte()
                    self.undeliverable.append(
                        _UndeliveredNote(r.text(), r.text(), r.text(), r.text(), r.text())
                    )
                else:
                    link.replies.put(frame)
        except (OSError, HyperFileError):
            return
        finally:
            self._on_link_lost(link)

    def _on_link_lost(self, link: _ChildLink) -> None:
        """Reader-thread epitaph: mark the link dead, wake any request
        blocked on its reply queue, and fail every in-flight query whose
        originator just vanished — a child death must surface as a typed
        error naming the site, never as a silent 30s control timeout."""
        link.dead = True
        link.replies.put(_LINK_LOST)
        if self._closed:
            return  # clean shutdown tears links down on purpose
        for qid in list(self._inflight):
            if qid.originator == link.site and self._inflight.pop(qid, None) is not None:
                self._completions.put((qid, _ChildDeath(link.site)))

    def _request(self, site: str, frame: bytes, expect: int) -> _Reader:
        link = self._links.get(site)
        if link is None:
            raise UnknownSite(site)
        with link.lock:
            if self._closed:
                raise TransportClosed("cluster is closed")
            if link.dead:
                raise ChildProcessDied(site)
            try:
                send_frame(link.conn, frame)
            except OSError as exc:
                raise ChildProcessDied(site, f"control send failed ({exc})") from None
            try:
                reply = link.replies.get(timeout=self.RPC_TIMEOUT_S)
            except queue.Empty:
                if not link.process.is_alive():
                    raise ChildProcessDied(site, "no control reply") from None
                raise HyperFileError(f"no control reply from {site}") from None
        if reply is _LINK_LOST:
            raise ChildProcessDied(site, "control link lost mid-request")
        r = _Reader(reply)
        tag = r.byte()
        if tag == _C_ERR:
            _raise_err(r)
        if tag != expect:
            raise HyperFileError(f"unexpected control reply 0x{tag:02x} from {site}")
        return r

    def _broadcast(self, frame: bytes, expect: int = _C_OK) -> None:
        for site in list(self._links):
            self._request(site, frame, expect=expect)

    def _apply_membership_view(self) -> None:
        """Ship the full status table to every child so their routing
        guards skip leaving/departed peers.  Best-effort per child: a
        failed site's process may already be unreachable, and the view
        declaring it departed is exactly the frame it cannot take."""
        assert self.membership is not None
        statuses = self.membership.view.statuses
        w = _Writer()
        w.byte(_C_MEMB_VIEW)
        w.varint(len(statuses))
        for site, status in statuses:
            w.text(site)
            w.text(status)
        frame = w.getvalue()
        for site in list(self._links):
            try:
                self._request(site, frame, expect=_C_OK)
            except (ChildProcessDied, HyperFileError):
                continue

    def _on_stats_push(self, site: str, payload: str) -> None:
        """A child's periodic stats sample (reader thread).  Each push is
        one single-site timeline row; CLOCK_MONOTONIC is system-wide on
        the platforms we run on, so child timestamps are comparable."""
        if self.stats_timeline is None:
            return
        record = json.loads(payload)
        self.stats_timeline.append(record["t"], {site: record["sample"]})

    def _on_remote_complete(
        self,
        qid: QueryId,
        result: QueryResult,
        counts: Optional[Dict[str, int]],
        trace_json: str = "",
    ) -> None:
        if trace_json and self._tracer is not None:
            self._tracer.ingest(_events_from_json(trace_json))
        info = self._inflight.pop(qid, None)
        outcome = QueryOutcome(
            qid=qid,
            result=result,
            submitted_at=info.submitted_at if info is not None else 0.0,
            completed_at=time.monotonic(),
            partition_counts=counts,
        )
        self._outcomes[qid] = outcome
        self._completions.put((qid, outcome))

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for timer in self._fault_timers:
            timer.cancel()
        shutdown = bytes((_C_SHUTDOWN,))
        for link in self._links.values():
            # Don't interleave with an in-flight request on the same
            # socket; a child that never frees the lock gets terminated.
            acquired = link.lock.acquire(timeout=2.0)
            try:
                send_frame(link.conn, shutdown)
            except OSError:
                pass
            finally:
                if acquired:
                    link.lock.release()
        for link in self._links.values():
            link.process.join(timeout=5.0)
            if link.process.is_alive():
                link.process.terminate()
            try:
                link.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data ------------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        return list(self.nodes)

    def store(self, site: str) -> StoreProxy:
        proxy = self.stores.get(site)
        if proxy is None:
            raise UnknownSite(site)
        return proxy

    # migrate/replicate_all: inherited from WallClockQueries — they run
    # against the store/forwarding proxies (and the parent-side
    # ReplicationManager when replication is on), so process mode keeps
    # the exact inline semantics including epoch-listener fan-out.

    def _broadcast_epoch(self, site: str, epoch: int) -> None:
        """Epoch-listener hook: tell every child node that ``site``'s
        store mutated, so PR 4/5 cache invalidation fires in each child
        exactly as it does in each inline node."""
        w = _Writer()
        w.byte(_C_EPOCH)
        w.text(site)
        w.varint(epoch)
        self._broadcast(w.getvalue())

    # -- availability ----------------------------------------------------

    def is_up(self, site: str) -> bool:
        with self._down_lock:
            return site not in self._down

    def is_down(self, site: str) -> bool:
        return not self.is_up(site)

    def _broadcast_availability(self, tag: int, site: str) -> None:
        w = _Writer()
        w.byte(tag)
        w.text(site)
        frame = w.getvalue()
        for target in self._links:
            self._request(target, frame, expect=_C_OK)

    def set_down(self, site: str) -> None:
        """Freeze a site's process; every child drops frames to it."""
        if site not in self._links:
            raise UnknownSite(site)
        with self._down_lock:
            self._down.add(site)
        self._broadcast_availability(_C_SET_DOWN, site)

    def set_up(self, site: str) -> None:
        if site not in self._links:
            raise UnknownSite(site)
        with self._down_lock:
            self._down.discard(site)
        self._broadcast_availability(_C_SET_UP, site)

    # -- fault injection -------------------------------------------------

    def use_faults(self, plan: FaultPlan) -> None:
        """Attach a chaos schedule.

        Link chaos (drop/duplicate/reorder/jitter, partitions) ships to
        every child as parameters — each child rebuilds a plan with its
        own RNG stream, which preserves the configured *rates* (all any
        wall-clock transport guarantees; see ``FaultPlan``'s docstring).
        Scheduled crashes run parent-side as timers driving the usual
        ``SET_DOWN``/``SET_UP`` broadcasts.
        """
        for crash in plan.crashes:
            if crash.site not in self._links:
                raise UnknownSite(crash.site)
        for timer in self._fault_timers:  # re-arming replaces, not stacks
            timer.cancel()
        self._fault_timers.clear()
        self.fault_plan = plan
        w = _Writer()
        w.byte(_C_FAULTS)
        w.varint(plan.seed)
        d = plan.defaults
        for value in (d.drop, d.duplicate, d.reorder, d.delay_jitter_s, plan.reorder_window_s):
            _write_value(w, float(value))
        links = dict(plan._links)
        w.varint(len(links))
        for pair in sorted(links, key=sorted):
            ends = sorted(pair)
            w.text(ends[0])
            w.text(ends[-1])
            f = links[pair]
            for value in (f.drop, f.duplicate, f.reorder, f.delay_jitter_s):
                _write_value(w, float(value))
        partitions = sorted(plan._partitions, key=sorted)
        w.varint(len(partitions))
        for pair in partitions:
            ends = sorted(pair)
            w.text(ends[0])
            w.text(ends[-1])
        frame = w.getvalue()
        for site in self._links:
            self._request(site, frame, expect=_C_OK)
        for crash in plan.crashes:
            self._schedule_fault(crash.at, lambda s=crash.site: self.set_down(s))
            if crash.recover_at is not None:
                self._schedule_fault(crash.recover_at, lambda s=crash.site: self.set_up(s))

    def fault_stats(self) -> Dict[str, int]:
        """Aggregate link-chaos counters across every child.

        Also mirrors the totals into the parent's ``fault_plan`` (the
        children run their own plan clones), so code that inspects
        ``plan.dropped`` etc. after a run sees real numbers.
        """
        totals = [0, 0, 0, 0, 0, 0]
        req = bytes((_C_FAULT_STATS,))
        for site in list(self._links):
            reply = self._request(site, req, expect=_C_VALUE)
            for i, value in enumerate(_read_value(reply)):
                totals[i] += value
        stats = {
            "messages_dropped": totals[0],
            "decisions": totals[1],
            "dropped": totals[2],
            "duplicated": totals[3],
            "delayed": totals[4],
            "partition_drops": totals[5],
        }
        plan = self.fault_plan
        if plan is not None:
            plan.decisions = stats["decisions"]
            plan.dropped = stats["dropped"]
            plan.duplicated = stats["duplicated"]
            plan.delayed = stats["delayed"]
            plan.partition_drops = stats["partition_drops"]
        return stats

    @property
    def messages_dropped(self) -> int:
        """Frames eaten at the wire (down sites + chaos), cluster-wide."""
        return self.fault_stats()["messages_dropped"]

    # -- reliable channel ------------------------------------------------

    def enable_reliable(self, config: Optional[ReliableConfig] = None) -> None:
        """Arm ack+retransmit on every child's inter-site links."""
        rconfig = config if config is not None else ReliableConfig()
        w = _Writer()
        w.byte(_C_RELIABLE_ON)
        _write_value(w, float(rconfig.base_backoff_s))
        _write_value(w, float(rconfig.max_backoff_s))
        w.varint(rconfig.max_retries)
        self._broadcast(w.getvalue())
        self._reliable_enabled = True

    @property
    def reliable_enabled(self) -> bool:
        return self._reliable_enabled

    # -- termination diagnostics -----------------------------------------

    def credit_deficit(self, qid: QueryId) -> Optional[Fraction]:
        """Cluster-wide missing termination credit for ``qid``.

        The exact merge :func:`repro.api.credit_deficit` performs over
        in-process nodes, computed from one CREDIT round-trip per child:
        ``1 - recovered - Σ held``.  ``None`` for detectors without a
        credit ledger or once the originator's context is gone.
        """
        w = _Writer()
        w.byte(_C_CREDIT)
        _write_qid(w, qid)
        frame = w.getvalue()
        recovered: Optional[Fraction] = None
        held = Fraction(0)
        for site in list(self._links):
            reply = self._request(site, frame, expect=_C_CREDIT_REPLY)
            if reply.byte() == 0:
                continue  # no context for qid at this child
            credit = _read_value(reply)
            is_originator = bool(reply.byte())
            rec = _read_value(reply)
            if not isinstance(credit, Fraction):
                return None
            held += credit
            if is_originator:
                recovered = rec if isinstance(rec, Fraction) else None
        if recovered is None:
            return None
        return Fraction(1) - recovered - held

    def _credit_deficit(self, qid: QueryId):
        """TerminationLost diagnostics must never mask the original
        failure — a child that died is exactly when this gets called."""
        try:
            return self.credit_deficit(qid)
        except (HyperFileError, OSError):
            return None

    def _schedule_fault(self, delay_s: float, fn) -> None:
        def fire() -> None:
            if self._closed:
                return
            try:
                fn()
            except (HyperFileError, OSError):
                pass  # a dying cluster can't crash sites any harder

        timer = threading.Timer(max(delay_s, 0.0), fire)
        timer.daemon = True
        self._fault_timers.append(timer)
        timer.start()

    # -- observability ---------------------------------------------------

    def total_stats(self) -> NodeStats:
        merged = NodeStats()
        stats_req = bytes((_C_STATS,))
        for site in self._links:
            reply = self._request(site, stats_req, expect=_C_STATS_REPLY)
            merged.merge(_decode_stats(reply))
        return merged

    def _init_telemetry(self, config) -> None:
        """Process-mode override: the children arm their own recorders
        and samplers straight from the shipped config, so the parent
        only prepares the merge targets (no timer thread, no node
        wiring — there are no local nodes)."""
        lanes = 2 * len(self.nodes) + 1
        if config.flight_recorder is not None:
            recorder = FlightRecorder(
                config.flight_recorder, span_start=lanes, span_step=lanes
            )
            recorder.now_fn = time.monotonic
            self.flight_recorder = recorder
        if config.stats_stream_s is not None:
            from ..metrics.collect import StatsTimeline

            self.stats_timeline = StatsTimeline()

    def attach_tracer(self, tracer) -> None:
        """Cross-process span shipping: every child gets a TRACE_ON with
        a collision-free span-id lane (child *i* allocates ``i+1`` with
        stride ``m = 2n+1``); shipped events ingest into ``tracer``
        verbatim, so the causal tree reconstructs exactly as on the
        shared-memory transports.  The parent's own (rare) allocations
        move to lane 0 for the same reason."""
        tracer.now_fn = time.monotonic
        names = list(self._links)
        lanes = 2 * len(names) + 1
        try:
            tracer._ids = itertools.count(lanes, lanes)
        except AttributeError:  # pragma: no cover - exotic tracer shims
            pass
        kinds = getattr(tracer, "_kinds", None)
        wire_kinds = sorted(kinds) if kinds is not None and set(kinds) != set(KINDS) else []
        for i, site in enumerate(names):
            w = _Writer()
            w.byte(_C_TRACE_ON)
            w.varint(len(wire_kinds))
            for kind in wire_kinds:
                w.text(kind)
            w.varint(i + 1)
            w.varint(lanes)
            self._request(site, w.getvalue(), expect=_C_OK)
        self._tracer = tracer

    def detach_tracer(self) -> None:
        if self._tracer is None:
            return
        self._drain_traces()  # final drain so no buffered spans are lost
        off = bytes((_C_TRACE_OFF,))
        for site in list(self._links):
            try:
                self._request(site, off, expect=_C_OK)
            except (HyperFileError, TransportClosed, OSError):
                continue
        self._tracer = None

    def _drain_traces(self) -> None:
        """Pull every child's buffered spans into the attached tracer.

        Runs on the client thread (wait/detach), never the reader thread
        — a reader thread blocking on its own child's reply queue would
        deadlock the control channel.
        """
        tracer = self._tracer
        if tracer is None:
            return
        drain = bytes((_C_TRACE_DRAIN,))
        for site in list(self._links):
            try:
                reply = self._request(site, drain, expect=_C_TRACE_EVENTS)
            except (HyperFileError, TransportClosed, OSError):
                continue  # a dead child's spans arrive via FLIGHT_SNAP, if at all
            tracer.ingest(_events_from_json(reply.text()))
        tracer.events.sort(key=lambda e: e.time)

    def wait(self, qid: QueryId, timeout_s: Optional[float] = None) -> QueryOutcome:
        try:
            outcome = super().wait(qid, timeout_s=timeout_s)
        finally:
            # Completion piggybacks cover the originator; the post-wait
            # drain collects the other children's spans so the tree is
            # whole before the caller inspects it.
            if self._tracer is not None and not self._closed:
                self._drain_traces()
        if isinstance(outcome, _ChildDeath):
            # The originator's process died mid-query; its detector state
            # died with it, so this query can never terminate.
            self._flightrec_dump(qid, "termination_lost")
            raise TerminationLost(
                qid, undeliverable=len(self.undeliverable), site=outcome.site
            )
        return outcome

    def _flightrec_dump(self, qid: QueryId, reason: str) -> None:
        """Postmortem for a dying query: pull every child's ring, merge
        by timestamp into the parent recorder, write the dump."""
        if self.flight_recorder is None or qid in self._flightrec_dumped:
            return
        self._flightrec_dumped.add(qid)
        collected: List[TraceEvent] = []
        snap = bytes((_C_FLIGHT_SNAP,))
        for site in list(self._links):
            try:
                reply = self._request(site, snap, expect=_C_TRACE_EVENTS)
            except (HyperFileError, TransportClosed, OSError):
                continue  # a genuinely dead process keeps its ring
            collected.extend(_events_from_json(reply.text()))
        collected.sort(key=lambda e: e.time)
        self.flight_recorder.events.clear()  # the rings ARE the state
        for event in collected:
            self.flight_recorder.record(event)
        self.flight_recorder.dump(qid, reason, site=qid.originator)

    def enable_metrics(self, registry=None):
        """Each child runs its own registry (node counters, SLO
        histograms); :meth:`metrics_snapshot` merges them with the
        parent's registry (admission-control counters) into one view."""
        if registry is None:
            from ..metrics.registry import MetricsRegistry

            registry = MetricsRegistry()
        self.metrics = registry
        on = bytes((_C_METRICS_ON,))
        for site in self._links:
            self._request(site, on, expect=_C_OK)
        return registry

    def metrics_snapshot(self):
        registry = getattr(self, "metrics", None)
        if registry is None:
            return None
        from ..metrics.registry import merge_snapshots

        snaps = [registry.snapshot()]
        req = bytes((_C_METRICS_SNAP,))
        for site in list(self._links):
            try:
                reply = self._request(site, req, expect=_C_METRICS_REPLY)
            except (HyperFileError, TransportClosed, OSError):
                continue
            snaps.append(json.loads(reply.text()))
        return merge_snapshots(*snaps)

    # -- dispatch hooks --------------------------------------------------

    def _dispatch_submit(
        self,
        origin: str,
        qid: QueryId,
        program: Program,
        initial: List[Oid],
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> None:
        w = _Writer()
        w.byte(_C_SUBMIT)
        _write_qid(w, qid)
        _write_program(w, program)
        _write_value(w, tuple(initial))
        w.text(priority or "")
        w.text(tenant or "")
        self._request(origin, w.getvalue(), expect=_C_OK)

    def _dispatch_submit_from_saved(
        self, origin: str, qid: QueryId, program: Program, source_qid: QueryId
    ) -> None:
        w = _Writer()
        w.byte(_C_SUBMIT_SAVED)
        _write_qid(w, qid)
        _write_program(w, program)
        _write_qid(w, source_qid)
        self._request(origin, w.getvalue(), expect=_C_OK)

    def _dispatch_expire(self, origin: str, qid: QueryId) -> None:
        w = _Writer()
        w.byte(_C_EXPIRE)
        _write_qid(w, qid)
        self._request(origin, w.getvalue(), expect=_C_OK)
