"""One OS process per site: the asyncio transport's multi-core mode.

``ClusterConfig(processes=True)`` makes ``transport="async"`` build a
:class:`ProcessCluster` instead of the shared-loop inline deployment:
every site is a spawned child process running its own event loop, frame
server and :class:`~repro.server.node.ServerNode`, so site CPU work
runs in genuine parallel (no shared GIL).  Inter-site query traffic
uses exactly the same framed envelope protocol as the inline and socket
transports — the child reuses the :class:`~repro.net.asyncio_cluster`
site machinery verbatim against a small duck-typed runtime.

What changes is everything that silently leaned on shared memory.  The
parent holds no stores and no nodes; each shared-memory convenience now
has an explicit wire representation on a per-child *control* channel
(same length-prefixed framing, a small tag-based control vocabulary):

* ``HELLO`` / ``PEERS`` — bootstrap handshake: each child reports its
  data port, the parent broadcasts the full port map;
* ``CREATE`` / ``GET`` / ``REPLACE`` — store access, proxied by
  :class:`StoreProxy` (objects cross as codec bytes, not references);
* ``SUBMIT`` / ``SUBMIT_SAVED`` / ``EXPIRE`` — query dispatch hooks;
* ``SET_DOWN`` / ``SET_UP`` — availability broadcasts, so every child's
  sender drops frames to a down peer exactly like the inline transport;
* ``STATS`` — per-site :class:`~repro.server.stats.NodeStats` snapshots
  for ``total_stats``;
* ``COMPLETE`` — the child-side originator pushes the finished
  :class:`~repro.engine.results.QueryResult` (with partition counts,
  plus any trace events buffered since the last drain) back unprompted;
  the parent turns it into the usual :class:`~repro.api.QueryOutcome`;
* ``TRACE_ON`` / ``TRACE_OFF`` / ``TRACE_DRAIN`` — cross-process span
  shipping: each child buffers :class:`~repro.tracing.TraceEvent`
  records in a span-id namespace of its own (child *i* of *n* sites
  allocates ``i+1, i+1+m, ...`` with stride ``m = 2n+1``), so the
  parent ingests shipped events into the user's tracer verbatim and
  the causal tree reconstructs with no id remapping;
* ``METRICS_ON`` / ``METRICS_SNAP`` — each child runs its own
  :class:`~repro.metrics.MetricsRegistry`; the parent merges child
  snapshots into one cluster view (``merge_snapshots``);
* ``STATS_PUSH`` — with ``stats_stream_s`` configured each child pushes
  periodic :meth:`NodeStats.sample` rows out-of-band; the reader thread
  lands them in the parent's :class:`~repro.metrics.collect.StatsTimeline`;
* ``FLIGHT_SNAP`` — fetch a child's flight-recorder ring (the per-site
  bounded span buffer armed by ``ClusterConfig.flight_recorder``); the
  parent merges the rings and writes the postmortem dump when a query
  dies badly;
* ``FAULTS`` — ships a :class:`~repro.faults.plan.FaultPlan`'s link
  chaos parameters (the plan object itself is not picklable); scheduled
  crashes stay parent-side as timers driving ``SET_DOWN``/``SET_UP``.

The parent serialises requests per child (one outstanding request, FIFO
replies), so replies need no correlation ids; ``COMPLETE`` and
``STATS_PUSH`` pushes are routed out-of-band by the per-child reader
thread.  Trace drains and flight snaps run on the client thread (never
the reader thread, which must stay free to route the replies).

Deliberately unsupported here (the config is rejected loudly, see
``docs/ASYNC.md``): replication and the reliable channel — each assumes
shared objects between sites and has no wire representation yet.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import queue
import socket
import threading
import time
from dataclasses import fields, replace
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..api import QueryOutcome
from ..config import ClusterConfig
from ..core.oid import Oid
from ..core.program import Program
from ..core.tuples import HFTuple
from ..engine.results import ExecutionStats, QueryResult, ResultSet
from ..errors import HyperFileError, ObjectNotFound, TransportClosed, UnknownSite
from ..faults.plan import FaultPlan
from ..server.stats import NodeStats
from ..tracing import KINDS, FlightRecorder, QueryTracer, TeeTracer, TraceEvent, _jsonable
from .codec import (
    _read_object,
    _read_program,
    _read_qid,
    _read_value,
    _write_object,
    _write_program,
    _write_qid,
    _write_value,
    _Reader,
    _Writer,
)
from .common import WallClockQueries
from .messages import QueryId
from .sockets import recv_frame, send_frame

# -- control vocabulary ------------------------------------------------------

_C_HELLO = 0x01
_C_PEERS = 0x02
_C_CREATE = 0x03
_C_GET = 0x04
_C_REPLACE = 0x05
_C_SUBMIT = 0x06
_C_SUBMIT_SAVED = 0x07
_C_EXPIRE = 0x08
_C_SET_DOWN = 0x09
_C_SET_UP = 0x0A
_C_STATS = 0x0B
_C_SHUTDOWN = 0x0C
_C_TRACE_ON = 0x0D
_C_TRACE_OFF = 0x0E
_C_TRACE_DRAIN = 0x0F
_C_METRICS_ON = 0x12
_C_METRICS_SNAP = 0x13
_C_FLIGHT_SNAP = 0x14
_C_FAULTS = 0x15
_C_OK = 0x20
_C_ERR = 0x21
_C_OBJECT = 0x22
_C_STATS_REPLY = 0x23
_C_TRACE_EVENTS = 0x24
_C_METRICS_REPLY = 0x25
_C_COMPLETE = 0x30
_C_STATS_PUSH = 0x31

#: Error types the control channel can re-raise parent-side by name.
_ERROR_TYPES = {
    "ObjectNotFound": ObjectNotFound,
    "UnknownSite": UnknownSite,
    "HyperFileError": HyperFileError,
}


def _encode_stats(stats: NodeStats) -> bytes:
    """Field-driven NodeStats encoding (new counters ride automatically)."""
    w = _Writer()
    named = [(f.name, getattr(stats, f.name)) for f in fields(stats)]
    w.varint(len(named))
    for name, value in named:
        w.text(name)
        if isinstance(value, dict):
            _write_value(w, tuple(sorted(value.items())))
        else:
            _write_value(w, value)
    return w.getvalue()


def _decode_stats(r: _Reader) -> NodeStats:
    stats = NodeStats()
    for _ in range(r.varint()):
        name = r.text()
        value = _read_value(r)
        if isinstance(getattr(stats, name, None), dict):
            value = dict(value)
        setattr(stats, name, value)
    return stats


def _events_to_json(events: List[TraceEvent]) -> str:
    """Trace events as one JSON document (the span-shipping wire form).

    Events are JSON-able by construction (``_jsonable`` stringifies
    anything exotic in the detail map) — the same flattening the jsonl
    exporter applies, so a shipped event round-trips identically to a
    dumped one.
    """
    return json.dumps(
        [
            {
                "t": e.time, "site": e.site, "kind": e.kind, "qid": e.qid,
                "span": e.span, "parent": e.parent,
                "detail": {k: _jsonable(v) for k, v in e.detail.items()},
            }
            for e in events
        ]
    )


def _events_from_json(text: str) -> List[TraceEvent]:
    if not text:
        return []
    return [
        TraceEvent(
            time=rec["t"], site=rec["site"], kind=rec["kind"], qid=rec["qid"],
            detail=rec["detail"], span=rec["span"], parent=rec["parent"],
        )
        for rec in json.loads(text)
    ]


def _encode_result(
    qid: QueryId, result: QueryResult, partition_counts, trace_json: str = ""
) -> bytes:
    w = _Writer()
    w.byte(_C_COMPLETE)
    _write_qid(w, qid)
    _write_value(w, tuple(result.oids))
    w.varint(len(result.retrieved))
    for target in sorted(result.retrieved):
        w.text(target)
        _write_value(w, tuple(result.retrieved[target]))
    for f in fields(ExecutionStats):
        w.varint(getattr(result.stats, f.name))
    w.byte(1 if result.partial else 0)
    w.text(result.partial_reason or "")
    counts = dict(partition_counts) if partition_counts else {}
    w.varint(len(counts))
    for site in sorted(counts):
        w.text(site)
        w.varint(counts[site])
    w.text(trace_json)
    return w.getvalue()


def _decode_result(
    r: _Reader,
) -> Tuple[QueryId, QueryResult, Optional[Dict[str, int]], str]:
    qid = _read_qid(r)
    oids = ResultSet()
    oids.extend(_read_value(r))
    retrieved = {r.text(): list(_read_value(r)) for _ in range(r.varint())}
    stats = ExecutionStats(**{f.name: r.varint() for f in fields(ExecutionStats)})
    partial = r.byte() == 1
    reason = r.text() or None
    counts = {r.text(): r.varint() for _ in range(r.varint())} or None
    trace_json = r.text()
    result = QueryResult(
        oids=oids, retrieved=retrieved, stats=stats, partial=partial, partial_reason=reason
    )
    return qid, result, counts, trace_json


def _err_frame(exc: BaseException) -> bytes:
    w = _Writer()
    w.byte(_C_ERR)
    w.text(type(exc).__name__)
    w.text(str(exc))
    return w.getvalue()


def _raise_err(r: _Reader) -> None:
    name = r.text()
    raise _ERROR_TYPES.get(name, HyperFileError)(r.text())


# --------------------------------------------------------------------------
# child process
# --------------------------------------------------------------------------


class _ChildRuntime:
    """The duck-typed cluster surface the reused site machinery needs.

    :class:`~repro.net.asyncio_cluster._AsyncSite` and ``_PeerLink`` talk
    to their owning cluster through exactly these members; providing them
    here lets the child run the same drain/send/framing code as the
    inline transport, unchanged.
    """

    def __init__(self, site: str, names: List[str], config: ClusterConfig) -> None:
        self.site = site
        self.names = names
        self.config = config
        self.ports: Dict[str, int] = {}
        self.fault_plan = None
        self.messages_dropped = 0
        self._down: set = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Telemetry plane (all driven over the control channel).
        #: Shipping tracer installed by TRACE_ON; its events[cursor:]
        #: are what drains and completion piggybacks carry to the parent.
        self.tracer: Optional[QueryTracer] = None
        self.trace_cursor = 0
        #: Per-site flight-recorder ring, armed from the shipped config.
        self.recorder: Optional[FlightRecorder] = None
        self.metrics = None

    def take_trace_events(self) -> List[TraceEvent]:
        """Events buffered since the last take (cursor-based, so the
        completion piggyback and explicit drains never double-ship)."""
        if self.tracer is None:
            return []
        events = self.tracer.events[self.trace_cursor:]
        self.trace_cursor = len(self.tracer.events)
        return events

    @property
    def sites(self) -> List[str]:
        return list(self.names)

    def is_down(self, site: str) -> bool:
        return site in self._down

    def port_of(self, site: str) -> int:
        try:
            return self.ports[site]
        except KeyError:
            raise UnknownSite(site) from None

    def _endpoint_for(self, site: str):
        return None

    def _reliable_ingest(self, env) -> None:  # pragma: no cover - reliable is rejected
        raise HyperFileError("reliable channel is not supported in process mode")


def _child_main(site: str, names: List[str], parent_port: int, config: ClusterConfig) -> None:
    """Entry point of one spawned site process."""
    asyncio.run(_child_serve(site, names, parent_port, config))


async def _child_serve(
    site: str, names: List[str], parent_port: int, config: ClusterConfig
) -> None:
    from ..server.node import ServerNode
    from ..sim.costs import FREE_COSTS
    from ..storage.memstore import MemStore
    from ..termination.base import make_strategy
    from .asyncio_cluster import _AsyncSite
    from .codec import FrameReader, FRAME_HEADER

    runtime = _ChildRuntime(site, names, config)
    runtime._loop = asyncio.get_running_loop()
    store = MemStore(site)

    control_writer: Optional[asyncio.StreamWriter] = None

    def push_complete(qid: QueryId, result: QueryResult) -> None:
        counts = None
        ctx = node.contexts.get(qid)
        if ctx is not None and ctx.partition_counts:
            counts = ctx.partition_counts
        # Piggyback the spans buffered since the last drain: the common
        # case (one query at a time) ships its whole trace with zero
        # extra round-trips; the parent's post-wait drain picks up the
        # other children's events.
        shipped = runtime.take_trace_events()
        payload = _encode_result(qid, result, counts, _events_to_json(shipped) if shipped else "")
        control_writer.write(FRAME_HEADER.pack(len(payload)) + payload)

    node = ServerNode(
        site,
        store,
        costs=FREE_COSTS,
        termination=make_strategy(config.termination),
        discipline=config.discipline,
        result_mode=config.result_mode,
        on_query_complete=push_complete,
        is_site_up=lambda s: not runtime.is_down(s),
        batching=config.batching,
        caching=config.caching,
        qos=config.qos,
    )
    node.now_fn = time.monotonic
    # Span-id namespacing: with n sites and m = 2n + 1 lanes, child i's
    # shipping tracer allocates from lane i+1 and its flight recorder
    # from lane n+1+i; the parent keeps lane 0 (start=m, step=m) for its
    # own rare allocations.  Shipped span ids never collide anywhere.
    index = names.index(site)
    lanes = 2 * len(names) + 1
    if config.flight_recorder is not None:
        runtime.recorder = FlightRecorder(
            replace(config.flight_recorder, dump_dir=None),  # parent writes the files
            span_start=len(names) + 1 + index,
            span_step=lanes,
        )
        runtime.recorder.now_fn = time.monotonic
        node.tracer = runtime.recorder
    asite = _AsyncSite(node, runtime)
    await asite.bootstrap()
    asite._drain_task = asyncio.get_running_loop().create_task(asite.drain())

    reader, control_writer = await asyncio.open_connection(config.host, parent_port)
    hello = _Writer()
    hello.byte(_C_HELLO)
    hello.text(site)
    hello.varint(asite.port)
    payload = hello.getvalue()
    control_writer.write(FRAME_HEADER.pack(len(payload)) + payload)

    async def stats_pusher(period_s: float) -> None:
        """Push one NodeStats sample per period, out-of-band (STATS_PUSH
        frames are routed by the parent's reader thread, never queued as
        a reply)."""
        while True:
            await asyncio.sleep(period_s)
            sample = node.stats.sample()
            sample["work_depth"] = node.work_depth
            w = _Writer()
            w.byte(_C_STATS_PUSH)
            w.text(site)
            w.text(json.dumps({"t": time.monotonic(), "sample": sample}))
            push = w.getvalue()
            control_writer.write(FRAME_HEADER.pack(len(push)) + push)
            if node.tracer is not None:
                node.tracer.emit(site, "stats_push", "", sites=1)

    pusher_task = None
    if config.stats_stream_s is not None:
        pusher_task = asyncio.get_running_loop().create_task(
            stats_pusher(config.stats_stream_s)
        )

    frames = FrameReader()
    running = True
    while running:
        chunk = await reader.read(64 * 1024)
        if not chunk:
            break
        for frame in frames.feed(chunk):
            reply = _handle_control(frame, runtime, asite, store)
            if reply is _SHUTDOWN:
                reply = bytes((_C_OK,))
                running = False
            if reply is not None:
                control_writer.write(FRAME_HEADER.pack(len(reply)) + reply)
        await control_writer.drain()
    if pusher_task is not None:
        pusher_task.cancel()
    asite.shutdown()
    control_writer.close()


_SHUTDOWN = object()


def _handle_control(frame, runtime: _ChildRuntime, asite, store):
    """Process one control frame; returns the reply bytes (or None)."""
    r = _Reader(frame)
    tag = r.byte()
    try:
        if tag == _C_PEERS:
            runtime.ports = {r.text(): r.varint() for _ in range(r.varint())}
            return bytes((_C_OK,))
        if tag == _C_CREATE:
            tuples = [HFTuple(r.text(), _read_value(r), _read_value(r)) for _ in range(r.varint())]
            size_hint = _read_value(r)
            obj = store.create(tuples, size_hint=size_hint)
            w = _Writer()
            w.byte(_C_OBJECT)
            _write_object(w, obj)
            return w.getvalue()
        if tag == _C_GET:
            obj = store.get(_read_value(r))
            w = _Writer()
            w.byte(_C_OBJECT)
            _write_object(w, obj)
            return w.getvalue()
        if tag == _C_REPLACE:
            store.replace(_read_object(r))
            return bytes((_C_OK,))
        if tag == _C_SUBMIT:
            qid = _read_qid(r)
            program = _read_program(r)
            initial = list(_read_value(r))
            priority = r.text() or None
            tenant = r.text() or None
            asite.submit(qid, program, initial, priority, tenant)
            return bytes((_C_OK,))
        if tag == _C_SUBMIT_SAVED:
            qid = _read_qid(r)
            program = _read_program(r)
            source_qid = _read_qid(r)
            asite.submit_from_saved(qid, program, source_qid)
            return bytes((_C_OK,))
        if tag == _C_EXPIRE:
            asite.expire(_read_qid(r))
            return bytes((_C_OK,))
        if tag == _C_SET_DOWN:
            target = r.text()
            runtime._down.add(target)
            if target == runtime.site:
                asite.up_event.clear()
            return bytes((_C_OK,))
        if tag == _C_SET_UP:
            target = r.text()
            runtime._down.discard(target)
            if target == runtime.site:
                asite.up_event.set()
                asite.inbox.put_nowait(None)
            return bytes((_C_OK,))
        if tag == _C_STATS:
            return bytes((_C_STATS_REPLY,)) + _encode_stats(asite.node.stats)
        if tag == _C_TRACE_ON:
            kinds = [r.text() for _ in range(r.varint())] or None
            span_start = r.varint()
            span_step = r.varint()
            tracer = QueryTracer(kinds, span_start=span_start, span_step=span_step)
            tracer.now_fn = time.monotonic
            runtime.tracer = tracer
            runtime.trace_cursor = 0
            asite.node.tracer = (
                TeeTracer(tracer, runtime.recorder) if runtime.recorder is not None else tracer
            )
            return bytes((_C_OK,))
        if tag == _C_TRACE_OFF:
            runtime.tracer = None
            runtime.trace_cursor = 0
            asite.node.tracer = runtime.recorder
            return bytes((_C_OK,))
        if tag == _C_TRACE_DRAIN:
            w = _Writer()
            w.byte(_C_TRACE_EVENTS)
            w.text(_events_to_json(runtime.take_trace_events()))
            return w.getvalue()
        if tag == _C_METRICS_ON:
            from ..metrics.registry import MetricsRegistry

            runtime.metrics = MetricsRegistry()
            asite.node.metrics = runtime.metrics
            return bytes((_C_OK,))
        if tag == _C_METRICS_SNAP:
            if runtime.metrics is None:
                snap = {"metrics": []}
            else:
                runtime.metrics.publish_node_stats(runtime.site, asite.node.stats)
                snap = runtime.metrics.snapshot()
            w = _Writer()
            w.byte(_C_METRICS_REPLY)
            w.text(json.dumps(snap))
            return w.getvalue()
        if tag == _C_FLIGHT_SNAP:
            events = list(runtime.recorder.events) if runtime.recorder is not None else []
            w = _Writer()
            w.byte(_C_TRACE_EVENTS)
            w.text(_events_to_json(events))
            return w.getvalue()
        if tag == _C_FAULTS:
            seed = r.varint()
            drop, duplicate, reorder, jitter, window = (_read_value(r) for _ in range(5))
            plan = FaultPlan(
                seed=seed, drop=drop, duplicate=duplicate, reorder=reorder,
                delay_jitter_s=jitter, reorder_window_s=window,
            )
            for _ in range(r.varint()):
                a, b = r.text(), r.text()
                plan.link(
                    a, b,
                    drop=_read_value(r), duplicate=_read_value(r),
                    reorder=_read_value(r), delay_jitter_s=_read_value(r),
                )
            for _ in range(r.varint()):
                plan.partition(r.text(), r.text())
            runtime.fault_plan = plan
            return bytes((_C_OK,))
        if tag == _C_SHUTDOWN:
            return _SHUTDOWN
        raise HyperFileError(f"unknown control tag 0x{tag:02x}")
    except Exception as exc:  # surfaced parent-side as a typed error
        return _err_frame(exc)


# --------------------------------------------------------------------------
# parent side
# --------------------------------------------------------------------------


class StoreProxy:
    """Parent-side handle on one child's object store.

    Same ``create`` / ``get`` / ``replace`` surface as
    :class:`~repro.storage.memstore.MemStore`; every call is one control
    round-trip, objects crossing as codec bytes.
    """

    def __init__(self, cluster: "ProcessCluster", site: str) -> None:
        self._cluster = cluster
        self._site = site

    @property
    def site(self) -> str:
        """The owning site's name (same surface as MemStore)."""
        return self._site

    def create(self, tuples: Iterable[HFTuple] = (), size_hint: Optional[int] = None):
        w = _Writer()
        w.byte(_C_CREATE)
        items = list(tuples)
        w.varint(len(items))
        for t in items:
            w.text(t.type)
            _write_value(w, t.key)
            _write_value(w, t.data)
        _write_value(w, size_hint)
        reply = self._cluster._request(self._site, w.getvalue(), expect=_C_OBJECT)
        return _read_object(reply)

    def get(self, oid: Oid):
        w = _Writer()
        w.byte(_C_GET)
        _write_value(w, oid)
        reply = self._cluster._request(self._site, w.getvalue(), expect=_C_OBJECT)
        return _read_object(reply)

    def replace(self, obj) -> None:
        w = _Writer()
        w.byte(_C_REPLACE)
        _write_object(w, obj)
        self._cluster._request(self._site, w.getvalue(), expect=_C_OK)


class _RemoteSiteHandle:
    """Stand-in for a ServerNode in the parent's ``nodes`` map.

    The shared query surface only touches ``contexts`` (for credit
    diagnostics, empty here: the contexts live in the child), so this
    carries just enough shape to keep the common code honest.
    """

    def __init__(self, site: str) -> None:
        self.site = site
        self.contexts: Dict = {}


class _ChildLink:
    """Parent bookkeeping for one child: process, control socket, reader."""

    def __init__(self, site: str, process, conn: socket.socket, data_port: int) -> None:
        self.site = site
        self.process = process
        self.conn = conn
        self.data_port = data_port
        self.lock = threading.Lock()
        self.replies: "queue.Queue" = queue.Queue()
        self.reader: Optional[threading.Thread] = None


class ProcessCluster(WallClockQueries):
    """The asyncio transport with one OS process per site.

    Built by ``AsyncCluster(..., config=ClusterConfig(processes=True))``
    (or ``transport="async"`` with that config); not normally
    instantiated directly.
    """

    #: Control-channel budget for one request round-trip.
    RPC_TIMEOUT_S = 30.0

    def __init__(
        self, sites: Union[int, Iterable[str]] = 3, config: Optional[ClusterConfig] = None
    ) -> None:
        config = config if config is not None else ClusterConfig(processes=True)
        config.require_default(
            "costs", "mark_granularity", "gc_contexts",
            "replication", "reliable",
            transport="async (process mode)",
        )
        self.config = config
        names = [f"site{i}" for i in range(sites)] if isinstance(sites, int) else list(sites)
        if not names:
            raise ValueError("a cluster needs at least one site")
        self._init_queries(config.qos)
        self._closed = False
        self._down: set = set()
        self._down_lock = threading.Lock()
        self.replication = None
        self.undeliverable: List = []
        self.nodes: Dict[str, _RemoteSiteHandle] = {n: _RemoteSiteHandle(n) for n in names}
        self._tracer: Optional[QueryTracer] = None
        self.fault_plan: Optional[FaultPlan] = None
        self._fault_timers: List[threading.Timer] = []
        self._init_telemetry(config)

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((config.host, 0))
        listener.listen(len(names))
        parent_port = listener.getsockname()[1]

        # spawn (not fork): the parent may carry live threads and event
        # loops from other clusters; inheriting them is a deadlock trap.
        ctx = multiprocessing.get_context("spawn")
        # The fault plan holds a lock and an RNG — not picklable; its
        # link-chaos parameters ship over the control channel instead
        # (use_faults below), and crashes fire from parent-side timers.
        child_config = config.replace(fault_plan=None)
        procs = {
            name: ctx.Process(
                target=_child_main,
                args=(name, names, parent_port, child_config),
                name=f"hf-proc-{name}",
                daemon=True,
            )
            for name in names
        }
        self._links: Dict[str, _ChildLink] = {}
        try:
            for proc in procs.values():
                proc.start()
            listener.settimeout(60.0)
            for _ in names:
                conn, _addr = listener.accept()
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                frame = recv_frame(conn)
                r = _Reader(frame)
                if r.byte() != _C_HELLO:
                    raise HyperFileError("child handshake out of order")
                site = r.text()
                port = r.varint()
                self._links[site] = _ChildLink(site, procs[site], conn, port)
        except Exception:
            for proc in procs.values():
                if proc.is_alive():
                    proc.terminate()
            raise
        finally:
            listener.close()

        for link in self._links.values():
            link.reader = threading.Thread(
                target=self._reader_loop, args=(link,),
                name=f"hf-proc-reader-{link.site}", daemon=True,
            )
            link.reader.start()

        peers = _Writer()
        peers.byte(_C_PEERS)
        peers.varint(len(self._links))
        for site, link in self._links.items():
            peers.text(site)
            peers.varint(link.data_port)
        frame = peers.getvalue()
        for site in self._links:
            self._request(site, frame, expect=_C_OK)

        if config.fault_plan is not None:
            self.use_faults(config.fault_plan)

    # -- control channel -------------------------------------------------

    def _reader_loop(self, link: _ChildLink) -> None:
        try:
            while True:
                frame = recv_frame(link.conn)
                if frame is None:
                    return
                if frame[0] == _C_COMPLETE:
                    r = _Reader(frame)
                    r.byte()
                    qid, result, counts, trace_json = _decode_result(r)
                    self._on_remote_complete(qid, result, counts, trace_json)
                elif frame[0] == _C_STATS_PUSH:
                    r = _Reader(frame)
                    r.byte()
                    self._on_stats_push(r.text(), r.text())
                else:
                    link.replies.put(frame)
        except (OSError, HyperFileError):
            return

    def _request(self, site: str, frame: bytes, expect: int) -> _Reader:
        link = self._links.get(site)
        if link is None:
            raise UnknownSite(site)
        with link.lock:
            if self._closed:
                raise TransportClosed("cluster is closed")
            send_frame(link.conn, frame)
            try:
                reply = link.replies.get(timeout=self.RPC_TIMEOUT_S)
            except queue.Empty:
                raise HyperFileError(f"no control reply from {site}") from None
        r = _Reader(reply)
        tag = r.byte()
        if tag == _C_ERR:
            _raise_err(r)
        if tag != expect:
            raise HyperFileError(f"unexpected control reply 0x{tag:02x} from {site}")
        return r

    def _on_stats_push(self, site: str, payload: str) -> None:
        """A child's periodic stats sample (reader thread).  Each push is
        one single-site timeline row; CLOCK_MONOTONIC is system-wide on
        the platforms we run on, so child timestamps are comparable."""
        if self.stats_timeline is None:
            return
        record = json.loads(payload)
        self.stats_timeline.append(record["t"], {site: record["sample"]})

    def _on_remote_complete(
        self,
        qid: QueryId,
        result: QueryResult,
        counts: Optional[Dict[str, int]],
        trace_json: str = "",
    ) -> None:
        if trace_json and self._tracer is not None:
            self._tracer.ingest(_events_from_json(trace_json))
        info = self._inflight.pop(qid, None)
        outcome = QueryOutcome(
            qid=qid,
            result=result,
            submitted_at=info.submitted_at if info is not None else 0.0,
            completed_at=time.monotonic(),
            partition_counts=counts,
        )
        self._outcomes[qid] = outcome
        self._completions.put((qid, outcome))

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for timer in self._fault_timers:
            timer.cancel()
        shutdown = bytes((_C_SHUTDOWN,))
        for link in self._links.values():
            # Don't interleave with an in-flight request on the same
            # socket; a child that never frees the lock gets terminated.
            acquired = link.lock.acquire(timeout=2.0)
            try:
                send_frame(link.conn, shutdown)
            except OSError:
                pass
            finally:
                if acquired:
                    link.lock.release()
        for link in self._links.values():
            link.process.join(timeout=5.0)
            if link.process.is_alive():
                link.process.terminate()
            try:
                link.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data ------------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        return list(self.nodes)

    def store(self, site: str) -> StoreProxy:
        if site not in self._links:
            raise UnknownSite(site)
        return StoreProxy(self, site)

    def migrate(self, oid: Oid, to_site: str) -> Oid:
        raise HyperFileError("migrate is not supported in process mode")

    # -- availability ----------------------------------------------------

    def is_up(self, site: str) -> bool:
        with self._down_lock:
            return site not in self._down

    def is_down(self, site: str) -> bool:
        return not self.is_up(site)

    def _broadcast_availability(self, tag: int, site: str) -> None:
        w = _Writer()
        w.byte(tag)
        w.text(site)
        frame = w.getvalue()
        for target in self._links:
            self._request(target, frame, expect=_C_OK)

    def set_down(self, site: str) -> None:
        """Freeze a site's process; every child drops frames to it."""
        if site not in self._links:
            raise UnknownSite(site)
        with self._down_lock:
            self._down.add(site)
        self._broadcast_availability(_C_SET_DOWN, site)

    def set_up(self, site: str) -> None:
        if site not in self._links:
            raise UnknownSite(site)
        with self._down_lock:
            self._down.discard(site)
        self._broadcast_availability(_C_SET_UP, site)

    # -- fault injection -------------------------------------------------

    def use_faults(self, plan: FaultPlan) -> None:
        """Attach a chaos schedule.

        Link chaos (drop/duplicate/reorder/jitter, partitions) ships to
        every child as parameters — each child rebuilds a plan with its
        own RNG stream, which preserves the configured *rates* (all any
        wall-clock transport guarantees; see ``FaultPlan``'s docstring).
        Scheduled crashes run parent-side as timers driving the usual
        ``SET_DOWN``/``SET_UP`` broadcasts.
        """
        for crash in plan.crashes:
            if crash.site not in self._links:
                raise UnknownSite(crash.site)
        self.fault_plan = plan
        w = _Writer()
        w.byte(_C_FAULTS)
        w.varint(plan.seed)
        d = plan.defaults
        for value in (d.drop, d.duplicate, d.reorder, d.delay_jitter_s, plan.reorder_window_s):
            _write_value(w, float(value))
        links = dict(plan._links)
        w.varint(len(links))
        for pair in sorted(links, key=sorted):
            ends = sorted(pair)
            w.text(ends[0])
            w.text(ends[-1])
            f = links[pair]
            for value in (f.drop, f.duplicate, f.reorder, f.delay_jitter_s):
                _write_value(w, float(value))
        partitions = sorted(plan._partitions, key=sorted)
        w.varint(len(partitions))
        for pair in partitions:
            ends = sorted(pair)
            w.text(ends[0])
            w.text(ends[-1])
        frame = w.getvalue()
        for site in self._links:
            self._request(site, frame, expect=_C_OK)
        for crash in plan.crashes:
            self._schedule_fault(crash.at, lambda s=crash.site: self.set_down(s))
            if crash.recover_at is not None:
                self._schedule_fault(crash.recover_at, lambda s=crash.site: self.set_up(s))

    def _schedule_fault(self, delay_s: float, fn) -> None:
        def fire() -> None:
            if self._closed:
                return
            try:
                fn()
            except (HyperFileError, OSError):
                pass  # a dying cluster can't crash sites any harder

        timer = threading.Timer(max(delay_s, 0.0), fire)
        timer.daemon = True
        self._fault_timers.append(timer)
        timer.start()

    # -- observability ---------------------------------------------------

    def total_stats(self) -> NodeStats:
        merged = NodeStats()
        stats_req = bytes((_C_STATS,))
        for site in self._links:
            reply = self._request(site, stats_req, expect=_C_STATS_REPLY)
            merged.merge(_decode_stats(reply))
        return merged

    def _init_telemetry(self, config) -> None:
        """Process-mode override: the children arm their own recorders
        and samplers straight from the shipped config, so the parent
        only prepares the merge targets (no timer thread, no node
        wiring — there are no local nodes)."""
        lanes = 2 * len(self.nodes) + 1
        if config.flight_recorder is not None:
            recorder = FlightRecorder(
                config.flight_recorder, span_start=lanes, span_step=lanes
            )
            recorder.now_fn = time.monotonic
            self.flight_recorder = recorder
        if config.stats_stream_s is not None:
            from ..metrics.collect import StatsTimeline

            self.stats_timeline = StatsTimeline()

    def attach_tracer(self, tracer) -> None:
        """Cross-process span shipping: every child gets a TRACE_ON with
        a collision-free span-id lane (child *i* allocates ``i+1`` with
        stride ``m = 2n+1``); shipped events ingest into ``tracer``
        verbatim, so the causal tree reconstructs exactly as on the
        shared-memory transports.  The parent's own (rare) allocations
        move to lane 0 for the same reason."""
        tracer.now_fn = time.monotonic
        names = list(self._links)
        lanes = 2 * len(names) + 1
        try:
            tracer._ids = itertools.count(lanes, lanes)
        except AttributeError:  # pragma: no cover - exotic tracer shims
            pass
        kinds = getattr(tracer, "_kinds", None)
        wire_kinds = sorted(kinds) if kinds is not None and set(kinds) != set(KINDS) else []
        for i, site in enumerate(names):
            w = _Writer()
            w.byte(_C_TRACE_ON)
            w.varint(len(wire_kinds))
            for kind in wire_kinds:
                w.text(kind)
            w.varint(i + 1)
            w.varint(lanes)
            self._request(site, w.getvalue(), expect=_C_OK)
        self._tracer = tracer

    def detach_tracer(self) -> None:
        if self._tracer is None:
            return
        self._drain_traces()  # final drain so no buffered spans are lost
        off = bytes((_C_TRACE_OFF,))
        for site in list(self._links):
            try:
                self._request(site, off, expect=_C_OK)
            except (HyperFileError, TransportClosed, OSError):
                continue
        self._tracer = None

    def _drain_traces(self) -> None:
        """Pull every child's buffered spans into the attached tracer.

        Runs on the client thread (wait/detach), never the reader thread
        — a reader thread blocking on its own child's reply queue would
        deadlock the control channel.
        """
        tracer = self._tracer
        if tracer is None:
            return
        drain = bytes((_C_TRACE_DRAIN,))
        for site in list(self._links):
            try:
                reply = self._request(site, drain, expect=_C_TRACE_EVENTS)
            except (HyperFileError, TransportClosed, OSError):
                continue  # a dead child's spans arrive via FLIGHT_SNAP, if at all
            tracer.ingest(_events_from_json(reply.text()))
        tracer.events.sort(key=lambda e: e.time)

    def wait(self, qid: QueryId, timeout_s: Optional[float] = None) -> QueryOutcome:
        try:
            return super().wait(qid, timeout_s=timeout_s)
        finally:
            # Completion piggybacks cover the originator; the post-wait
            # drain collects the other children's spans so the tree is
            # whole before the caller inspects it.
            if self._tracer is not None and not self._closed:
                self._drain_traces()

    def _flightrec_dump(self, qid: QueryId, reason: str) -> None:
        """Postmortem for a dying query: pull every child's ring, merge
        by timestamp into the parent recorder, write the dump."""
        if self.flight_recorder is None or qid in self._flightrec_dumped:
            return
        self._flightrec_dumped.add(qid)
        collected: List[TraceEvent] = []
        snap = bytes((_C_FLIGHT_SNAP,))
        for site in list(self._links):
            try:
                reply = self._request(site, snap, expect=_C_TRACE_EVENTS)
            except (HyperFileError, TransportClosed, OSError):
                continue  # a genuinely dead process keeps its ring
            collected.extend(_events_from_json(reply.text()))
        collected.sort(key=lambda e: e.time)
        self.flight_recorder.events.clear()  # the rings ARE the state
        for event in collected:
            self.flight_recorder.record(event)
        self.flight_recorder.dump(qid, reason, site=qid.originator)

    def enable_metrics(self, registry=None):
        """Each child runs its own registry (node counters, SLO
        histograms); :meth:`metrics_snapshot` merges them with the
        parent's registry (admission-control counters) into one view."""
        if registry is None:
            from ..metrics.registry import MetricsRegistry

            registry = MetricsRegistry()
        self.metrics = registry
        on = bytes((_C_METRICS_ON,))
        for site in self._links:
            self._request(site, on, expect=_C_OK)
        return registry

    def metrics_snapshot(self):
        registry = getattr(self, "metrics", None)
        if registry is None:
            return None
        from ..metrics.registry import merge_snapshots

        snaps = [registry.snapshot()]
        req = bytes((_C_METRICS_SNAP,))
        for site in list(self._links):
            try:
                reply = self._request(site, req, expect=_C_METRICS_REPLY)
            except (HyperFileError, TransportClosed, OSError):
                continue
            snaps.append(json.loads(reply.text()))
        return merge_snapshots(*snaps)

    # -- dispatch hooks --------------------------------------------------

    def _dispatch_submit(
        self,
        origin: str,
        qid: QueryId,
        program: Program,
        initial: List[Oid],
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> None:
        w = _Writer()
        w.byte(_C_SUBMIT)
        _write_qid(w, qid)
        _write_program(w, program)
        _write_value(w, tuple(initial))
        w.text(priority or "")
        w.text(tenant or "")
        self._request(origin, w.getvalue(), expect=_C_OK)

    def _dispatch_submit_from_saved(
        self, origin: str, qid: QueryId, program: Program, source_qid: QueryId
    ) -> None:
        w = _Writer()
        w.byte(_C_SUBMIT_SAVED)
        _write_qid(w, qid)
        _write_program(w, program)
        _write_qid(w, source_qid)
        self._request(origin, w.getvalue(), expect=_C_OK)

    def _dispatch_expire(self, origin: str, qid: QueryId) -> None:
        w = _Writer()
        w.byte(_C_EXPIRE)
        _write_qid(w, qid)
        self._request(origin, w.getvalue(), expect=_C_OK)
