"""Binary wire codec for HyperFile messages.

The paper's prototype spoke UDP/TCP between PC/RTs; the in-process
transports pass Python objects by reference, but the socket transport
(:mod:`repro.net.sockets`) needs real bytes.  This codec serialises the
four inter-site message types — and everything reachable from them:
programs, patterns, work items, oids, credit fractions — into a compact
tag-length-value format.

Design notes:

* no pickle: only the closed set of types below decodes, so a malicious
  peer cannot instantiate arbitrary objects;
* integers are zig-zag varints, so the common small values (filter
  indices, iteration counts) cost one byte;
* the format is self-describing enough for :func:`decode_message` to
  reject truncated or corrupt frames with :class:`CodecError` rather
  than mis-reading them.
"""

from __future__ import annotations

import struct
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

from ..cache import BloomFilter, SiteSummary
from ..core.oid import Oid
from ..core.patterns import ANY, Any_, Bind, Literal, OneOf, Pattern, Range, Regex, Use
from ..core.program import DerefOp, LoopOp, Op, Program, RetrieveOp, SelectOp
from ..engine.items import WorkItem
from ..errors import HyperFileError
from ..faults.reliable import ReliableAck, ReliableData
from ..storage.blobstore import BlobRef
from ..core.objects import HFObject
from ..core.tuples import HFTuple
from .messages import (
    BatchedQuery,
    BatchedResults,
    ControlMessage,
    DerefRequest,
    Envelope,
    FetchReply,
    FetchRequest,
    Heartbeat,
    PurgeContext,
    QueryId,
    ResultBatch,
    SeedFromSaved,
    ViewChange,
)


class CodecError(HyperFileError, ValueError):
    """Raised on malformed, truncated, or unsupported wire data."""


# -- value tags -------------------------------------------------------------

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_OID = 0x08
_T_FRACTION = 0x09
_T_BLOBREF = 0x0A

# -- pattern tags ------------------------------------------------------------

_P_ANY = 0x20
_P_LITERAL = 0x21
_P_REGEX = 0x22
_P_RANGE = 0x23
_P_ONEOF = 0x24
_P_BIND = 0x25
_P_USE = 0x26

# -- op tags -------------------------------------------------------------------

_O_SELECT = 0x30
_O_DEREF = 0x31
_O_LOOP = 0x32
_O_RETRIEVE = 0x33

# -- message tags ----------------------------------------------------------------

_M_DEREF_REQUEST = 0x40
_M_RESULT_BATCH = 0x41
_M_CONTROL = 0x42
_M_SEED_FROM_SAVED = 0x43
_M_PURGE_CONTEXT = 0x44
_M_FETCH_REQUEST = 0x45
_M_FETCH_REPLY = 0x46
_M_RELIABLE_DATA = 0x47
_M_RELIABLE_ACK = 0x48
_M_BATCHED_QUERY = 0x49
_M_BATCHED_RESULTS = 0x4A
_M_HEARTBEAT = 0x4B
_M_VIEW_CHANGE = 0x4C


#: Magnitude bound for one encoded integer (512-byte ints).  Termination
#: credit denominators reach 2^depth, so this admits chains ~4000 hops
#: deep while still rejecting absurd lengths from corrupt frames.
MAX_VARINT_BITS = 4096


class _Writer:
    __slots__ = ("chunks",)

    def __init__(self) -> None:
        self.chunks: List[bytes] = []

    def byte(self, value: int) -> None:
        self.chunks.append(bytes((value,)))

    def varint(self, value: int) -> None:
        # zig-zag then LEB128, arbitrary precision: weighted-termination
        # credit rides the wire as a Fraction whose denominator doubles
        # per sequential hop (2^depth), so a 64-bit cap turns any deep
        # chain into a silently dropped message and a hung query.  The
        # bit bound only guards against absurd/hostile values.
        if value.bit_length() > MAX_VARINT_BITS:
            raise CodecError(f"integer out of range: {value.bit_length()} bits")
        encoded = (value << 1) if value >= 0 else ((-value << 1) - 1)
        out = bytearray()
        while True:
            bits = encoded & 0x7F
            encoded >>= 7
            if encoded:
                out.append(bits | 0x80)
            else:
                out.append(bits)
                break
        self.chunks.append(bytes(out))

    def raw(self, payload: bytes) -> None:
        self.varint(len(payload))
        self.chunks.append(payload)

    def text(self, value: str) -> None:
        self.raw(value.encode("utf-8"))

    def getvalue(self) -> bytes:
        return b"".join(self.chunks)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise CodecError("truncated frame (tag expected)")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def varint(self) -> int:
        shift = 0
        encoded = 0
        while True:
            if self.pos >= len(self.data):
                raise CodecError("truncated varint")
            b = self.data[self.pos]
            self.pos += 1
            encoded |= (b & 0x7F) << shift
            if not b & 0x80:
                break
            shift += 7
            if shift > MAX_VARINT_BITS:
                raise CodecError("varint too long")
        return (encoded >> 1) ^ -(encoded & 1)

    def raw(self) -> bytes:
        length = self.varint()
        if length < 0 or self.pos + length > len(self.data):
            raise CodecError("truncated byte string")
        payload = self.data[self.pos : self.pos + length]
        self.pos += length
        return payload

    def text(self) -> str:
        # str(buf, "utf-8") accepts any buffer, so zero-copy memoryview
        # frames decode without materialising intermediate bytes.
        return str(self.raw(), "utf-8")

    def done(self) -> bool:
        return self.pos == len(self.data)


# --------------------------------------------------------------------------
# values
# --------------------------------------------------------------------------


def _write_value(w: _Writer, value: Any) -> None:
    if value is None:
        w.byte(_T_NONE)
    elif value is True:
        w.byte(_T_TRUE)
    elif value is False:
        w.byte(_T_FALSE)
    elif isinstance(value, int):
        w.byte(_T_INT)
        w.varint(value)
    elif isinstance(value, float):
        w.byte(_T_FLOAT)
        w.chunks.append(struct.pack(">d", value))
    elif isinstance(value, str):
        w.byte(_T_STR)
        w.text(value)
    elif isinstance(value, (bytes, bytearray)):
        w.byte(_T_BYTES)
        w.raw(bytes(value))
    elif isinstance(value, Oid):
        w.byte(_T_OID)
        w.text(value.birth_site)
        w.varint(value.local_id)
        w.text(value.presumed_site if value.presumed_site is not None else "")
    elif isinstance(value, Fraction):
        w.byte(_T_FRACTION)
        w.varint(value.numerator)
        w.varint(value.denominator)
    elif isinstance(value, BlobRef):
        w.byte(_T_BLOBREF)
        _write_value(w, value.oid)
        _write_value(w, value.key)
        w.varint(value.size)
    elif isinstance(value, (tuple, list)):
        w.byte(_T_TUPLE)
        w.varint(len(value))
        for element in value:
            _write_value(w, element)
    else:
        raise CodecError(f"cannot encode value of type {type(value).__name__}")


def _read_value(r: _Reader) -> Any:
    tag = r.byte()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return r.varint()
    if tag == _T_FLOAT:
        if r.pos + 8 > len(r.data):
            raise CodecError("truncated float")
        value = struct.unpack_from(">d", r.data, r.pos)[0]
        r.pos += 8
        return value
    if tag == _T_STR:
        return r.text()
    if tag == _T_BYTES:
        return bytes(r.raw())
    if tag == _T_OID:
        birth = r.text()
        local_id = r.varint()
        hint = r.text()
        return Oid(birth, local_id, presumed_site=hint or None)
    if tag == _T_FRACTION:
        return Fraction(r.varint(), r.varint())
    if tag == _T_BLOBREF:
        oid = _read_value(r)
        key = _read_value(r)
        size = r.varint()
        return BlobRef(oid, key, size)
    if tag == _T_TUPLE:
        length = r.varint()
        if length < 0 or length > 1_000_000:
            raise CodecError(f"implausible tuple length {length}")
        return tuple(_read_value(r) for _ in range(length))
    raise CodecError(f"unknown value tag 0x{tag:02x}")


# --------------------------------------------------------------------------
# patterns
# --------------------------------------------------------------------------


def _write_pattern(w: _Writer, pattern: Pattern) -> None:
    if isinstance(pattern, Any_):
        w.byte(_P_ANY)
    elif isinstance(pattern, Literal):
        w.byte(_P_LITERAL)
        _write_value(w, pattern.value)
    elif isinstance(pattern, Regex):
        w.byte(_P_REGEX)
        w.text(pattern.pattern)
    elif isinstance(pattern, Range):
        w.byte(_P_RANGE)
        _write_value(w, pattern.lo)
        _write_value(w, pattern.hi)
    elif isinstance(pattern, OneOf):
        w.byte(_P_ONEOF)
        _write_value(w, pattern.values)
    elif isinstance(pattern, Bind):
        w.byte(_P_BIND)
        w.text(pattern.name)
    elif isinstance(pattern, Use):
        w.byte(_P_USE)
        w.text(pattern.name)
    else:
        raise CodecError(f"cannot encode pattern {type(pattern).__name__}")


def _read_pattern(r: _Reader) -> Pattern:
    tag = r.byte()
    if tag == _P_ANY:
        return ANY
    if tag == _P_LITERAL:
        return Literal(_read_value(r))
    if tag == _P_REGEX:
        return Regex(r.text())
    if tag == _P_RANGE:
        return Range(_read_value(r), _read_value(r))
    if tag == _P_ONEOF:
        return OneOf(list(_read_value(r)))
    if tag == _P_BIND:
        return Bind(r.text())
    if tag == _P_USE:
        return Use(r.text())
    raise CodecError(f"unknown pattern tag 0x{tag:02x}")


# --------------------------------------------------------------------------
# programs
# --------------------------------------------------------------------------


def _write_program(w: _Writer, program: Program) -> None:
    w.text(program.source)
    w.text(program.result)
    w.varint(program.size)
    for op in program.ops:
        if isinstance(op, SelectOp):
            w.byte(_O_SELECT)
            _write_pattern(w, op.type_pattern)
            _write_pattern(w, op.key_pattern)
            _write_pattern(w, op.data_pattern)
        elif isinstance(op, DerefOp):
            w.byte(_O_DEREF)
            w.text(op.var)
            w.byte(1 if op.keep_source else 0)
        elif isinstance(op, LoopOp):
            w.byte(_O_LOOP)
            w.varint(op.start)
            w.varint(-1 if op.count is None else op.count)
        elif isinstance(op, RetrieveOp):
            w.byte(_O_RETRIEVE)
            _write_pattern(w, op.type_pattern)
            _write_pattern(w, op.key_pattern)
            w.text(op.target)
        else:
            raise CodecError(f"cannot encode op {type(op).__name__}")
    # Enclosing-loop chains (needed for iteration bookkeeping).
    for chain in program.enclosing:
        w.varint(len(chain))
        for idx in chain:
            w.varint(idx)


def _read_program(r: _Reader) -> Program:
    source = r.text()
    result = r.text()
    size = r.varint()
    if size < 0 or size > 10_000:
        raise CodecError(f"implausible program size {size}")
    ops: List[Op] = []
    for index in range(1, size + 1):
        tag = r.byte()
        if tag == _O_SELECT:
            ops.append(SelectOp(index, _read_pattern(r), _read_pattern(r), _read_pattern(r)))
        elif tag == _O_DEREF:
            var = r.text()
            keep = r.byte() == 1
            ops.append(DerefOp(index, var, keep))
        elif tag == _O_LOOP:
            start = r.varint()
            count = r.varint()
            ops.append(LoopOp(index, start, None if count == -1 else count))
        elif tag == _O_RETRIEVE:
            ops.append(RetrieveOp(index, _read_pattern(r), _read_pattern(r), r.text()))
        else:
            raise CodecError(f"unknown op tag 0x{tag:02x}")
    enclosing: List[Tuple[int, ...]] = []
    for _ in range(size):
        chain_len = r.varint()
        if chain_len < 0 or chain_len > 64:
            raise CodecError("implausible loop-chain length")
        enclosing.append(tuple(r.varint() for _ in range(chain_len)))
    return Program(source, result, ops, enclosing)


# --------------------------------------------------------------------------
# work items, query ids, termination attachments
# --------------------------------------------------------------------------


def _write_item(w: _Writer, item: WorkItem) -> None:
    _write_value(w, item.oid)
    w.varint(item.start)
    w.varint(len(item.iters))
    for loop_index, count in item.iters:
        w.varint(loop_index)
        w.varint(count)


def _read_item(r: _Reader) -> WorkItem:
    oid = _read_value(r)
    if not isinstance(oid, Oid):
        raise CodecError("work item oid expected")
    start = r.varint()
    n = r.varint()
    if n < 0 or n > 64:
        raise CodecError("implausible iteration-stack size")
    iters = tuple((r.varint(), r.varint()) for _ in range(n))
    return WorkItem(oid=oid, start=start, iters=iters)


def _write_qid(w: _Writer, qid: QueryId) -> None:
    w.varint(qid.seq)
    w.text(qid.originator)


def _read_qid(r: _Reader) -> QueryId:
    return QueryId(r.varint(), r.text())


def _write_term(w: _Writer, term) -> None:
    items = sorted(term.items())
    w.varint(len(items))
    for key, value in items:
        w.text(key)
        _write_value(w, value)


def _read_term(r: _Reader) -> Dict[str, Any]:
    n = r.varint()
    if n < 0 or n > 64:
        raise CodecError("implausible attachment size")
    return {r.text(): _read_value(r) for _ in range(n)}


# --------------------------------------------------------------------------
# site summaries (caching layer piggyback)
# --------------------------------------------------------------------------


def _write_bloom(w: _Writer, bloom: BloomFilter) -> None:
    w.varint(bloom.hashes)
    w.varint(bloom.count)
    w.raw(bloom.to_bytes())


def _read_bloom(r: _Reader) -> BloomFilter:
    hashes = r.varint()
    if hashes < 1 or hashes > 64:
        raise CodecError(f"implausible bloom hash count {hashes}")
    count = r.varint()
    if count < 0:
        raise CodecError("negative bloom count")
    data = bytes(r.raw())
    if not data:
        raise CodecError("empty bloom bit array")
    return BloomFilter.from_bytes(data, hashes, count)


def _write_summary(w: _Writer, summary: SiteSummary) -> None:
    w.text(summary.site)
    w.varint(summary.epoch)
    w.varint(summary.forward_count)
    w.varint(summary.alloc_high)
    _write_bloom(w, summary.holdings)
    w.varint(len(summary.reach))
    for key in sorted(summary.reach):
        w.text(key)
        _write_bloom(w, summary.reach[key])


def _read_summary(r: _Reader) -> SiteSummary:
    site = r.text()
    epoch = r.varint()
    forward_count = r.varint()
    alloc_high = r.varint()
    if epoch < 0 or forward_count < 0 or alloc_high < 0:
        raise CodecError("negative summary field")
    holdings = _read_bloom(r)
    n = r.varint()
    if n < 0 or n > 1024:
        raise CodecError(f"implausible reach-key count {n}")
    reach = {r.text(): _read_bloom(r) for _ in range(n)}
    return SiteSummary(site, epoch, forward_count, holdings, reach, alloc_high)


# --------------------------------------------------------------------------
# messages
# --------------------------------------------------------------------------


def _write_object(w: _Writer, obj: Optional[HFObject]) -> None:
    if obj is None:
        w.byte(0)
        return
    w.byte(1)
    _write_value(w, obj.oid)
    w.varint(obj.size_bytes)
    w.varint(len(obj.tuples))
    for t in obj.tuples:
        w.text(t.type)
        _write_value(w, t.key)
        _write_value(w, t.data)


def _read_object(r: _Reader) -> Optional[HFObject]:
    if r.byte() == 0:
        return None
    oid = _read_value(r)
    if not isinstance(oid, Oid):
        raise CodecError("object record must start with an oid")
    size_hint = r.varint()
    n = r.varint()
    if n < 0 or n > 1_000_000:
        raise CodecError(f"implausible tuple count {n}")
    tuples = [HFTuple(r.text(), _read_value(r), _read_value(r)) for _ in range(n)]
    return HFObject(oid, tuples, size_hint=size_hint)


#: Attribute caching a message's encoded bytes on the (frozen) message
#: itself.  Message dataclasses are immutable, so the bytes can never go
#: stale; the attribute slot exists because none of them define
#: ``__slots__``.
_WIRE_CACHE = "_wire_cache"


def preframe(message: Any) -> bytes:
    """Encode a message once and remember the bytes on the instance.

    This is the zero-copy send path's other half: a ``ResultBatch`` or
    ``BatchedQuery`` that rides inside a coalesced frame, gets
    retransmitted by the reliable channel, or traverses several hops is
    serialised exactly once, and every later wrap reuses the cached
    bytes.  Safe because every wire message type is a frozen dataclass.
    """
    cached = getattr(message, _WIRE_CACHE, None)
    if cached is None:
        cached = _encode_message_uncached(message)
        object.__setattr__(message, _WIRE_CACHE, cached)
    return cached


def encode_message(message: Any) -> bytes:
    """Serialise one inter-site message to bytes."""
    cached = getattr(message, _WIRE_CACHE, None)
    if cached is not None:
        return cached
    return _encode_message_uncached(message)


def _encode_message_uncached(message: Any) -> bytes:
    w = _Writer()
    if isinstance(message, DerefRequest):
        w.byte(_M_DEREF_REQUEST)
        _write_qid(w, message.qid)
        _write_program(w, message.program)
        _write_item(w, message.item)
        _write_term(w, message.term)
    elif isinstance(message, ResultBatch):
        w.byte(_M_RESULT_BATCH)
        _write_qid(w, message.qid)
        _write_value(w, tuple(message.oids))
        _write_value(w, tuple(message.emissions))
        w.byte(1 if message.count_only else 0)
        w.varint(message.count)
        _write_term(w, message.term)
        if message.summary is None:
            w.byte(0)
        else:
            w.byte(1)
            _write_summary(w, message.summary)
    elif isinstance(message, ControlMessage):
        w.byte(_M_CONTROL)
        _write_qid(w, message.qid)
        w.text(message.kind)
        _write_value(w, message.payload)
    elif isinstance(message, SeedFromSaved):
        w.byte(_M_SEED_FROM_SAVED)
        _write_qid(w, message.qid)
        _write_program(w, message.program)
        _write_qid(w, message.source_qid)
        _write_term(w, message.term)
    elif isinstance(message, PurgeContext):
        w.byte(_M_PURGE_CONTEXT)
        _write_qid(w, message.qid)
    elif isinstance(message, FetchRequest):
        w.byte(_M_FETCH_REQUEST)
        w.varint(message.request_id)
        _write_value(w, message.oid)
        w.text(message.reply_to)
    elif isinstance(message, FetchReply):
        w.byte(_M_FETCH_REPLY)
        w.varint(message.request_id)
        _write_object(w, message.obj)
    elif isinstance(message, BatchedQuery):
        w.byte(_M_BATCHED_QUERY)
        _write_qid(w, message.qid)
        _write_program(w, message.program)
        w.varint(len(message.items))
        for item, term in zip(message.items, message.terms):
            _write_item(w, item)
            _write_term(w, term)
        _write_value(w, tuple(message.marked_hints))
    elif isinstance(message, BatchedResults):
        w.byte(_M_BATCHED_RESULTS)
        w.varint(len(message.batches))
        for batch in message.batches:
            w.raw(preframe(batch))
    elif isinstance(message, Heartbeat):
        w.byte(_M_HEARTBEAT)
        w.text(message.origin)
        w.varint(len(message.counters))
        for site, count in message.counters:
            w.text(site)
            w.varint(count)
    elif isinstance(message, ViewChange):
        w.byte(_M_VIEW_CHANGE)
        w.varint(message.epoch)
        w.varint(len(message.statuses))
        for site, status in message.statuses:
            w.text(site)
            w.text(status)
        w.text(message.reason)
    elif isinstance(message, ReliableData):
        w.byte(_M_RELIABLE_DATA)
        w.varint(message.seq)
        w.raw(preframe(message.payload))
    elif isinstance(message, ReliableAck):
        w.byte(_M_RELIABLE_ACK)
        w.varint(message.seq)
    else:
        raise CodecError(f"cannot encode message {type(message).__name__}")
    return w.getvalue()


def decode_message(frame: bytes) -> Any:
    """Deserialise one inter-site message; raises :class:`CodecError`."""
    r = _Reader(frame)
    tag = r.byte()
    if tag == _M_DEREF_REQUEST:
        message: Any = DerefRequest(_read_qid(r), _read_program(r), _read_item(r), _read_term(r))
    elif tag == _M_RESULT_BATCH:
        qid = _read_qid(r)
        oids = _read_value(r)
        emissions = _read_value(r)
        count_only = r.byte() == 1
        count = r.varint()
        term = _read_term(r)
        summary = _read_summary(r) if r.byte() == 1 else None
        message = ResultBatch(
            qid,
            oids=tuple(oids),
            emissions=tuple(tuple(e) for e in emissions),
            count_only=count_only,
            count=count,
            term=term,
            summary=summary,
        )
    elif tag == _M_CONTROL:
        message = ControlMessage(_read_qid(r), r.text(), _read_value(r))
    elif tag == _M_SEED_FROM_SAVED:
        message = SeedFromSaved(_read_qid(r), _read_program(r), _read_qid(r), _read_term(r))
    elif tag == _M_PURGE_CONTEXT:
        message = PurgeContext(_read_qid(r))
    elif tag == _M_FETCH_REQUEST:
        request_id = r.varint()
        oid = _read_value(r)
        if not isinstance(oid, Oid):
            raise CodecError("fetch request oid expected")
        message = FetchRequest(request_id, oid, reply_to=r.text())
    elif tag == _M_FETCH_REPLY:
        message = FetchReply(r.varint(), _read_object(r))
    elif tag == _M_BATCHED_QUERY:
        qid = _read_qid(r)
        program = _read_program(r)
        n = r.varint()
        if n < 1 or n > 100_000:
            raise CodecError(f"implausible batch size {n}")
        items: List[WorkItem] = []
        terms: List[Dict[str, Any]] = []
        for _ in range(n):
            items.append(_read_item(r))
            terms.append(_read_term(r))
        hints = _read_value(r)
        if not isinstance(hints, tuple):
            raise CodecError("batched-query hints must be a tuple")
        message = BatchedQuery(qid, program, tuple(items), tuple(terms), hints)
    elif tag == _M_BATCHED_RESULTS:
        n = r.varint()
        if n < 1 or n > 100_000:
            raise CodecError(f"implausible batched-results size {n}")
        inner = []
        for _ in range(n):
            batch = decode_message(r.raw())
            if not isinstance(batch, ResultBatch):
                raise CodecError("batched-results frame may only carry ResultBatch")
            inner.append(batch)
        message = BatchedResults(tuple(inner))
    elif tag == _M_HEARTBEAT:
        origin = r.text()
        n = r.varint()
        if n > 100_000:
            raise CodecError(f"implausible heartbeat table size {n}")
        message = Heartbeat(origin, tuple((r.text(), r.varint()) for _ in range(n)))
    elif tag == _M_VIEW_CHANGE:
        epoch = r.varint()
        n = r.varint()
        if n > 100_000:
            raise CodecError(f"implausible view size {n}")
        statuses = tuple((r.text(), r.text()) for _ in range(n))
        message = ViewChange(epoch, statuses, reason=r.text())
    elif tag == _M_RELIABLE_DATA:
        seq = r.varint()
        message = ReliableData(seq, decode_message(r.raw()))
    elif tag == _M_RELIABLE_ACK:
        message = ReliableAck(r.varint())
    else:
        raise CodecError(f"unknown message tag 0x{tag:02x}")
    if not r.done():
        raise CodecError(f"{len(r.data) - r.pos} trailing bytes after message")
    return message


# --------------------------------------------------------------------------
# envelopes (socket framing)
# --------------------------------------------------------------------------


#: Wire codes for the QoS service classes (byte value = index + 1; 0 =
#: "QoS off").  Order matches :data:`repro.qos.PRIORITIES` and is part
#: of the frame layout — append only.
_PRIORITY_CODES = ("interactive", "batch")


def encode_envelope(env: Envelope) -> bytes:
    """Serialise an envelope: sender, trace-span context, then the message.

    The socket transport frames these (length-prefixed) on the wire; the
    span block is how tracing causality crosses a real TCP connection.  A
    span count of zero means "untraced" (``spans=None``), matching the
    in-process transports bit for bit.  Span entries of ``0`` are per-item
    placeholders for untraced causes inside a traced batch.

    The sender's store epoch travels the same way: ``0`` means "caching
    off" (``src_epoch=None``), any other value ``e`` decodes to epoch
    ``e - 1``.

    The replica-routing hint (``tried``: holder sites already attempted
    for the work inside) follows the epoch as a site-name count; ``0``
    means "no hint" (``tried=None``), which is what every frame on an
    unreplicated deployment carries.

    The QoS fields close the header the same way: a priority byte (``0``
    = QoS off, ``1`` = interactive, ``2`` = batch) and a pressure varint
    (``0`` = QoS off, else ``pressure + 1``).  A ``qos=None`` deployment
    writes two zero bytes here, and both ends agree on the layout, so
    the frames stay self-consistent across all transports.
    """
    w = _Writer()
    w.text(env.src)
    if env.spans is None:
        w.varint(0)
    else:
        w.varint(len(env.spans))
        for span in env.spans:
            w.varint(span)
    w.varint(0 if env.src_epoch is None else env.src_epoch + 1)
    if env.tried:
        w.varint(len(env.tried))
        for site in env.tried:
            w.text(site)
    else:
        w.varint(0)
    if env.priority is None:
        w.byte(0)
    else:
        try:
            w.byte(1 + _PRIORITY_CODES.index(env.priority))
        except ValueError:
            raise CodecError(f"unknown envelope priority {env.priority!r}") from None
    w.varint(0 if env.pressure is None else env.pressure + 1)
    w.chunks.append(encode_message(env.payload))
    return w.getvalue()


def decode_envelope(frame: bytes, dst: str) -> Envelope:
    """Inverse of :func:`encode_envelope`; raises :class:`CodecError`."""
    r = _Reader(frame)
    src = r.text()
    n = r.varint()
    if n < 0 or n > 100_000:
        raise CodecError(f"implausible span count {n}")
    spans = tuple(r.varint() for _ in range(n)) if n else None
    epoch_plus_one = r.varint()
    if epoch_plus_one < 0:
        raise CodecError("negative envelope epoch")
    src_epoch = None if epoch_plus_one == 0 else epoch_plus_one - 1
    n_tried = r.varint()
    if n_tried < 0 or n_tried > 100_000:
        raise CodecError(f"implausible tried-site count {n_tried}")
    tried = tuple(r.text() for _ in range(n_tried)) if n_tried else None
    priority_code = r.byte()
    if priority_code > len(_PRIORITY_CODES):
        raise CodecError(f"unknown envelope priority code {priority_code}")
    priority = None if priority_code == 0 else _PRIORITY_CODES[priority_code - 1]
    pressure_plus_one = r.varint()
    if pressure_plus_one < 0:
        raise CodecError("negative envelope pressure")
    pressure = None if pressure_plus_one == 0 else pressure_plus_one - 1
    payload = decode_message(r.data[r.pos :])
    return Envelope(
        src, dst, payload,
        spans=spans, src_epoch=src_epoch, tried=tried,
        priority=priority, pressure=pressure,
    )


# --------------------------------------------------------------------------
# stream framing (length-prefixed frames over a byte stream)
# --------------------------------------------------------------------------


#: Frame header: a 4-byte big-endian payload length.  Shared by the
#: socket and asyncio transports so their wire formats are identical.
FRAME_HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload — anything larger is treated as
#: stream corruption rather than allocated.
MAX_FRAME = 64 * 1024 * 1024


def encode_frame(payload: bytes) -> bytes:
    """Prefix one encoded envelope with its frame header."""
    if len(payload) > MAX_FRAME:
        raise CodecError(f"frame too large: {len(payload)} bytes")
    return FRAME_HEADER.pack(len(payload)) + payload


class FrameReader:
    """Incremental reassembly of length-prefixed frames from a stream.

    TCP delivers arbitrary chunkings of the byte stream; ``feed`` accepts
    each chunk as it arrives and returns every frame payload it
    completes, in order.  The zero-copy rule: a frame wholly contained in
    a single fed chunk comes back as a :class:`memoryview` slice of that
    chunk — no bytes are copied on the hot path, and the codec's reader
    consumes buffer objects directly.  Only a frame split across chunks
    is joined (exactly once) into its own buffer.

    Callers must therefore feed immutable chunks (``bytes``, as asyncio
    and socket ``recv`` provide) and finish decoding each returned view
    before mutating anything — both hold trivially for the transports
    here, which decode each frame as it is returned.
    """

    __slots__ = ("_held", "_need")

    def __init__(self) -> None:
        #: Prefix of the current incomplete frame, header bytes included.
        self._held = bytearray()
        #: Payload length of the held frame once its header is complete.
        self._need: Optional[int] = None

    @property
    def pending(self) -> int:
        """Bytes buffered for a frame still waiting on more input."""
        return len(self._held)

    @staticmethod
    def _check(need: int) -> int:
        if need > MAX_FRAME:
            raise CodecError(f"frame too large: {need} bytes")
        return need

    def feed(self, chunk: bytes) -> List[Any]:
        """Absorb one stream chunk; return the frame payloads it completes."""
        frames: List[Any] = []
        view = memoryview(chunk)
        total = len(view)
        pos = 0
        held = self._held
        while pos < total:
            if held:
                # Finishing a frame split across chunks: join into the
                # holdover (the format's one permitted copy).
                if self._need is None:
                    take = min(FRAME_HEADER.size - len(held), total - pos)
                    held += view[pos : pos + take]
                    pos += take
                    if len(held) < FRAME_HEADER.size:
                        break
                    self._need = self._check(FRAME_HEADER.unpack_from(held)[0])
                take = min(FRAME_HEADER.size + self._need - len(held), total - pos)
                held += view[pos : pos + take]
                pos += take
                if len(held) == FRAME_HEADER.size + self._need:
                    frames.append(bytes(memoryview(held)[FRAME_HEADER.size :]))
                    held.clear()
                    self._need = None
                else:
                    break
            elif total - pos < FRAME_HEADER.size:
                held += view[pos:]
                break
            else:
                need = self._check(FRAME_HEADER.unpack_from(view, pos)[0])
                end = pos + FRAME_HEADER.size + need
                if end <= total:
                    # Whole frame inside this chunk: zero-copy slice.
                    frames.append(view[pos + FRAME_HEADER.size : end])
                    pos = end
                else:
                    held += view[pos:]
                    self._need = need
                    break
        return frames
