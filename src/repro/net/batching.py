"""Per-destination send batching & coalescing (ROADMAP: "batching, async, caching").

The paper's central trade-off is parallelism vs. message cost: every
remote pointer costs a ~50 ms message, and on dense cross-site graphs
per-pointer messages dominate response time.  The standard lever for this
class of workload is coalescing traversal requests per source: instead of
one :class:`~repro.net.messages.DerefRequest` per pointer, a site queues
outbound work per ``(query, destination)`` and ships it as a single
:class:`~repro.net.messages.BatchedQuery` frame — one message header, one
copy of the query body, N compact item records.

Flush policy (adaptive):

* **size** — a queue reaching ``max_batch`` items flushes immediately;
* **drain** — when a query's working set drains at a site, every pending
  queue for that query flushes (mandatory for liveness: queued items carry
  termination credit that must eventually reach the originator);
* **timer** — with ``linger_s`` set, queues older than the linger flush on
  the transport's next poll (real transports poll wall-clock; the
  simulator's event loop makes drain/idle flushes immediate, so the timer
  is a real-transport knob);
* **idle** — a node with no inbox and no runnable context force-flushes
  everything pending (safety net; keeps ``has_work`` truthful).

The batcher also owns two *dedup* structures that cut messages without
ever changing results:

* a per-``(query, destination)`` **sent-set** of exact ``(oid, start,
  iter#)`` keys already shipped — re-sending an identical item is pure
  waste, the destination's mark table would suppress it on arrival;
* **remote mark hints**: each batched frame carries the sender's recent
  mark-table entries, and the receiver records them so it can skip
  sending back work the peer provably already processed (compact summary
  shipping in the spirit of Bloofi's multidimensional filters).

Both suppressions happen *before* termination credit is split off, so the
weighted-message detector's conservation stays exact; a suppressed send
is indistinguishable from a mark-table skip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..engine.items import WorkItem
from .messages import MarkHint, QueryId, ResultBatch, TermAttachment

#: Exact identity of a shippable work item (what the sent-set stores).
ItemKey = Tuple[Tuple[str, int], int, tuple]


def item_key(item: WorkItem) -> ItemKey:
    """The dedup key of a work item: ``(oid, start, iter#)`` exactly."""
    return (item.oid.key(), item.start, item.iters)


@dataclass(frozen=True)
class BatchConfig:
    """Batching knobs (see module docstring for the flush policy).

    ``max_batch=1`` with no linger disables the subsystem entirely — the
    node uses the legacy one-message-per-pointer path, bit-identical to
    the unbatched reproduction figures.
    """

    #: Flush a queue when it holds this many items.  1 = no batching.
    max_batch: int = 8

    #: Age (seconds, transport clock) after which a queue flushes on the
    #: next poll.  ``None`` = no timer; size/drain/idle flushes only.
    linger_s: Optional[float] = None

    #: Attach recent mark-table entries to outgoing frames so the
    #: destination can suppress echo sends.
    mark_hints: bool = True

    #: Max hints attached per frame (the rest ride on later frames).
    hint_cap: int = 64

    #: Also coalesce outbound ResultBatch messages (multi-query workloads)
    #: into BatchedResults frames.  Only meaningful with ``linger_s`` set;
    #: without a linger window results flush immediately as before.
    coalesce_results: bool = False

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.linger_s is not None and self.linger_s < 0:
            raise ValueError(f"linger_s must be >= 0, got {self.linger_s}")

    @property
    def enabled(self) -> bool:
        return self.max_batch > 1 or self.linger_s is not None


@dataclass
class _WorkQueue:
    items: List[WorkItem] = field(default_factory=list)
    terms: List[TermAttachment] = field(default_factory=list)
    #: Per-item cause span ids (tracing; None entries when untraced).
    spans: List[Optional[int]] = field(default_factory=list)
    #: Replica holders already attempted for work in this queue (union
    #: over items; empty on unreplicated deployments).  Rides the flushed
    #: frame's envelope so failover at the next hop keeps excluding them.
    tried: Set[str] = field(default_factory=set)
    first_enqueued: float = 0.0


@dataclass
class _ResultQueue:
    batches: List[ResultBatch] = field(default_factory=list)
    spans: List[Optional[int]] = field(default_factory=list)
    first_enqueued: float = 0.0


class SendBatcher:
    """One site's send queues + dedup state.  Owned by a ServerNode.

    Pure data structure: it never emits messages itself.  The node decides
    *when* to flush (size/drain/timer/idle) and *what* the flushed frame
    looks like; transports only supply the clock.
    """

    def __init__(self, config: BatchConfig) -> None:
        self.config = config
        self._work: Dict[Tuple[QueryId, str], _WorkQueue] = {}
        self._results: Dict[str, _ResultQueue] = {}
        #: Exact item keys already shipped, per (query, destination).
        self._sent: Dict[Tuple[QueryId, str], Set[ItemKey]] = {}
        #: Hints received: marks known to exist at a peer, per (query, peer).
        self._remote_marks: Dict[Tuple[QueryId, str], Set[MarkHint]] = {}
        #: Journal cursor per (query, destination) for hint attachment.
        self._hint_cursor: Dict[Tuple[QueryId, str], int] = {}

    # -- dedup -----------------------------------------------------------

    def already_sent(self, qid: QueryId, dst: str, item: WorkItem) -> bool:
        sent = self._sent.get((qid, dst))
        return sent is not None and item_key(item) in sent

    def record_sent(self, qid: QueryId, dst: str, item: WorkItem) -> None:
        self._sent.setdefault((qid, dst), set()).add(item_key(item))

    def forget_sent(self, qid: QueryId, dst: str, items: Iterable[WorkItem]) -> None:
        """Un-record items whose delivery failed (bounced batch / down
        destination) so a later re-discovery of the branch is not
        suppressed against a site that never processed it."""
        sent = self._sent.get((qid, dst))
        if sent is None:
            return
        for item in items:
            sent.discard(item_key(item))

    def record_remote_marks(
        self, qid: QueryId, peer: str, hints: Sequence[MarkHint]
    ) -> None:
        if hints:
            self._remote_marks.setdefault((qid, peer), set()).update(hints)

    def known_marked(self, qid: QueryId, peer: str, oid_key: Tuple[str, int], mark_key: tuple) -> bool:
        """True if ``peer`` told us it already holds this exact mark."""
        marks = self._remote_marks.get((qid, peer))
        return marks is not None and (oid_key, mark_key) in marks

    def take_hints(self, qid: QueryId, dst: str, mark_table) -> Tuple[MarkHint, ...]:
        """Next slice of the mark journal not yet shipped to ``dst``.

        Advances the per-destination cursor, then trims the journal up
        to the *minimum* cursor across this query's destinations — every
        retained entry is still owed to someone, everything older is
        dropped, so the journal stays bounded across flushes instead of
        logging the query's whole mark history.
        """
        if not self.config.mark_hints:
            return ()
        cursor = self._hint_cursor.get((qid, dst), 0)
        taken, new_cursor = mark_table.journal_slice(cursor, self.config.hint_cap)
        self._hint_cursor[(qid, dst)] = new_cursor
        floor = min(
            c for (q, _), c in self._hint_cursor.items() if q == qid
        )
        mark_table.trim_journal(floor)
        return taken

    # -- work queues -----------------------------------------------------

    def enqueue_work(
        self,
        qid: QueryId,
        dst: str,
        item: WorkItem,
        term: TermAttachment,
        now: float,
        span: Optional[int] = None,
        tried: Tuple[str, ...] = (),
    ) -> int:
        """Queue one work item; returns the queue's new length.

        ``span`` is the tracing span id of the step that caused the send
        (None when untraced); it rides the queue so the eventual batched
        frame can carry per-item causality.  ``tried`` lists replica
        holders already attempted for this item (failover re-sends);
        the queue unions them so the flushed envelope carries the hint.
        """
        queue = self._work.get((qid, dst))
        if queue is None:
            queue = self._work[(qid, dst)] = _WorkQueue(first_enqueued=now)
        queue.items.append(item)
        queue.terms.append(term)
        queue.spans.append(span)
        queue.tried.update(tried)
        return len(queue.items)

    def take_work(
        self, qid: QueryId, dst: str
    ) -> Tuple[
        Tuple[WorkItem, ...],
        Tuple[TermAttachment, ...],
        Tuple[Optional[int], ...],
        Tuple[str, ...],
    ]:
        """Remove and return everything queued for ``(qid, dst)``."""
        queue = self._work.pop((qid, dst), None)
        if queue is None:
            return (), (), (), ()
        return (
            tuple(queue.items),
            tuple(queue.terms),
            tuple(queue.spans),
            tuple(sorted(queue.tried)),
        )

    def work_destinations(self, qid: QueryId) -> List[str]:
        """Destinations with pending work for one query (drain flush)."""
        return [dst for (q, dst) in self._work if q == qid]

    def pending_work(self) -> List[Tuple[QueryId, str]]:
        """Every (query, destination) with pending work (idle flush)."""
        return list(self._work.keys())

    def due_work(self, now: float) -> List[Tuple[QueryId, str]]:
        """Queues older than the linger window (timer flush)."""
        if self.config.linger_s is None:
            return []
        horizon = now - self.config.linger_s
        return [key for key, q in self._work.items() if q.first_enqueued <= horizon]

    def queued_toward(self, dst: str) -> int:
        """Work items currently held for one destination, across queries.

        This is the quantity QoS backpressure grows when a peer reports
        high watermark — held items keep accumulating into larger frames
        instead of adding to the pressured site's inbox.
        """
        return sum(len(q.items) for (_, d), q in self._work.items() if d == dst)

    @property
    def total_queued(self) -> int:
        """All work items currently held in send queues (observability)."""
        return sum(len(q.items) for q in self._work.values())

    # -- result queues ---------------------------------------------------

    def enqueue_result(
        self, dst: str, batch: ResultBatch, now: float, span: Optional[int] = None
    ) -> int:
        queue = self._results.get(dst)
        if queue is None:
            queue = self._results[dst] = _ResultQueue(first_enqueued=now)
        queue.batches.append(batch)
        queue.spans.append(span)
        return len(queue.batches)

    def take_results(
        self, dst: str
    ) -> Tuple[Tuple[ResultBatch, ...], Tuple[Optional[int], ...]]:
        queue = self._results.pop(dst, None)
        if queue is None:
            return (), ()
        return tuple(queue.batches), tuple(queue.spans)

    def pending_results(self) -> List[str]:
        return list(self._results.keys())

    def due_results(self, now: float) -> List[str]:
        if self.config.linger_s is None:
            return []
        horizon = now - self.config.linger_s
        return [dst for dst, q in self._results.items() if q.first_enqueued <= horizon]

    # -- lifecycle -------------------------------------------------------

    @property
    def has_pending(self) -> bool:
        return bool(self._work) or bool(self._results)

    def drop_query(self, qid: QueryId) -> int:
        """Discard everything held for one query (deadline expiry/purge).

        Only callers that have already written the query's termination
        state off (``on_deadline``) may drop pending work — the queued
        attachments carry credit.  Returns the number of items dropped.
        """
        dropped = 0
        for key in [k for k in self._work if k[0] == qid]:
            dropped += len(self._work.pop(key).items)
        for key in [k for k in self._sent if k[0] == qid]:
            del self._sent[key]
        for key in [k for k in self._remote_marks if k[0] == qid]:
            del self._remote_marks[key]
        for key in [k for k in self._hint_cursor if k[0] == qid]:
            del self._hint_cursor[key]
        for dst in list(self._results):
            queue = self._results[dst]
            kept = [
                (b, s) for b, s in zip(queue.batches, queue.spans) if b.qid != qid
            ]
            dropped += len(queue.batches) - len(kept)
            if kept:
                queue.batches = [b for b, _ in kept]
                queue.spans = [s for _, s in kept]
            else:
                del self._results[dst]
        return dropped
