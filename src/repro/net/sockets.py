"""TCP socket transport: HyperFile sites talking real bytes.

The paper's prototype used "UDP and TCP/IP ... for inter-process
communication".  This transport runs every site as a TCP server on the
loopback interface; inter-site messages are serialised with
:mod:`repro.net.codec` and framed as ``4-byte big-endian length +
payload``, so what crosses between sites is genuinely bytes — nothing is
shared by reference.  (Sites run as threads of one process for test
convenience, but nothing in the protocol depends on that.)

This is the correctness-under-real-IO validation layer; timing
experiments use the simulated cluster, whose cost model the paper's
constants calibrate.

Fault tolerance matches the other transports: a
:class:`~repro.faults.plan.FaultPlan` drops/duplicates/delays frames at
the sender, ``set_down``/``set_up`` freeze a site's worker (nodes share
the cluster's availability oracle, exactly like the other transports, so
sends to a known-down site are written off for partial results; frames
already on the wire to it are dropped at the sender), and
``enable_reliable`` interposes the ack/retransmit channel, whose frames
travel the wire through the same codec as everything else.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Dict, Iterable, List, Optional, Union

from ..config import ClusterConfig, resolve_config
from ..core.oid import Oid
from ..core.program import Program
from ..errors import HyperFileError, UnknownSite
from ..faults.plan import FaultPlan
from ..faults.reliable import ReliableAck, ReliableConfig, ReliableData, ReliableEndpoint
from ..faults.timers import TimerThread
from ..cache import CacheConfig
from ..naming.directory import ReplicaDirectory
from ..net.batching import BatchConfig
from ..net.codec import FRAME_HEADER, MAX_FRAME, decode_envelope, encode_envelope
from ..qos import QoSConfig
from ..replication import ReplicationConfig, ReplicationManager
from ..net.messages import (
    BatchedQuery,
    DerefRequest,
    Envelope,
    QueryId,
    SeedFromSaved,
    Undeliverable,
)
from ..server.node import ServerNode
from ..sim.costs import FREE_COSTS
from ..storage.memstore import MemStore
from ..termination.base import make_strategy
from .common import WallClockQueries

# Frame layout (4-byte big-endian length + payload) and the size guard
# live in the codec now, shared with the asyncio transport.
_HEADER = FRAME_HEADER


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame."""
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Optional[bytes]:
    """Read one length-prefixed frame; None on orderly EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise HyperFileError(f"frame of {length} bytes exceeds limit")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise HyperFileError("connection closed mid-frame")
    return payload


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None if remaining == n else None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _SocketSite:
    """One site: a TCP accept loop, a worker loop, and outbound sockets."""

    def __init__(self, node: ServerNode, cluster: "SocketCluster") -> None:
        self.node = node
        self.cluster = cluster
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(16)
        self.port = self.listener.getsockname()[1]
        self.inbox: "queue.Queue" = queue.Queue()
        self._outbound: Dict[str, socket.socket] = {}
        self._out_lock = threading.Lock()
        self._node_lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        for target, name in ((self._accept_loop, "accept"), (self._work_loop, "work")):
            thread = threading.Thread(
                target=target, name=f"hf-sock-{self.node.site}-{name}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        self._stop.set()
        try:
            self.listener.close()
        except OSError:
            pass
        with self._out_lock:
            for sock in self._outbound.values():
                try:
                    sock.close()
                except OSError:
                    pass
            self._outbound.clear()
        self.inbox.put(None)

    # -- inbound ----------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self.listener.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._reader_loop, args=(conn,), daemon=True,
                name=f"hf-sock-{self.node.site}-reader",
            )
            thread.start()

    def _reader_loop(self, conn: socket.socket) -> None:
        try:
            while not self._stop.is_set():
                frame = recv_frame(conn)
                if frame is None:
                    return
                self.bytes_received += len(frame)
                # The envelope codec carries the sender site (Dijkstra-
                # Scholten parent tracking and result routing need it) and
                # the optional trace-span context.
                self.inbox.put(decode_envelope(frame, self.node.site))
        except (OSError, HyperFileError):
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # -- processing ----------------------------------------------------------------

    def _work_loop(self) -> None:
        while not self._stop.is_set():
            if self.cluster.is_down(self.node.site):
                # Crashed: freeze.  Frames already queued (or still being
                # enqueued by reader threads) are processed after set_up.
                time.sleep(0.01)
                continue
            try:
                env = self.inbox.get(timeout=0.05)
            except queue.Empty:
                env = None
            if self._stop.is_set():
                return
            outgoing: List[Envelope] = []
            with self._node_lock:
                if env is not None:
                    if isinstance(env.payload, (ReliableData, ReliableAck)):
                        self.cluster._reliable_ingest(env)
                    else:
                        self.node.on_message(env)
                while self.node.has_work:
                    report = self.node.step()
                    outgoing.extend(report.outgoing)
            for out in outgoing:
                self._send(out)

    def submit(
        self,
        qid: QueryId,
        program: Program,
        initial: List[Oid],
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> None:
        with self._node_lock:
            report = self.node.submit(qid, program, initial, priority=priority, tenant=tenant)
        for env in report.outgoing:
            self._send(env)
        self.inbox.put(None)  # nudge the worker

    def submit_from_saved(self, qid: QueryId, program: Program, source_qid: QueryId) -> None:
        with self._node_lock:
            report = self.node.submit_from_saved(qid, program, source_qid, self.cluster.sites)
        for env in report.outgoing:
            self._send(env)
        self.inbox.put(None)

    # -- outbound -----------------------------------------------------------------

    def _send(self, env: Envelope) -> None:
        endpoint = self.cluster._endpoint_for(env.src)
        if endpoint is not None and not isinstance(
            env.payload, (ReliableData, ReliableAck, Undeliverable)
        ):
            endpoint.send(env)
            return
        self._send_raw(env)

    def _send_raw(self, env: Envelope) -> None:
        """One wire transmission: availability + fault plan, then bytes."""
        if self.cluster.is_down(env.dst):
            # A "crashed" peer: the frame is lost at the wire.  The
            # reliable channel (if any) keeps retransmitting until the
            # peer recovers or retries run out.
            self.cluster.messages_dropped += 1
            return
        plan = self.cluster.fault_plan
        if plan is None:
            self._send_frame(env)
            return
        decision = plan.decide(env.src, env.dst)
        if decision.dropped:
            self.cluster.messages_dropped += 1
            return
        for extra in decision.delays:
            if extra > 0:
                self.cluster._timer_thread().schedule(extra, lambda e=env: self._send_frame(e))
            else:
                self._send_frame(env)

    def _send_frame(self, env: Envelope) -> None:
        # The envelope codec carries sender + span context + message.
        payload = encode_envelope(env)
        try:
            sock = self._connection_to(env.dst)
            send_frame(sock, payload)
            self.bytes_sent += len(payload)
        except OSError as exc:
            if self.cluster.reliable_enabled:
                # The channel will retransmit; treat as wire loss.
                self.cluster.messages_dropped += 1
                with self._out_lock:
                    self._outbound.pop(env.dst, None)
                return
            raise HyperFileError(f"send to {env.dst} failed: {exc}") from exc

    def _connection_to(self, site: str) -> socket.socket:
        with self._out_lock:
            sock = self._outbound.get(site)
            if sock is not None:
                return sock
            port = self.cluster.port_of(site)
            sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._outbound[site] = sock
            return sock


class SocketCluster(WallClockQueries):
    """A HyperFile deployment where sites exchange real TCP frames.

    Implements the same :class:`~repro.api.ClusterAPI` contract as the
    other transports.
    """

    def __init__(
        self,
        sites: Union[int, Iterable[str]] = 3,
        termination: str = "weighted",
        result_mode: str = "ship",
        fault_plan: Optional[FaultPlan] = None,
        reliable: Union[bool, ReliableConfig] = False,
        batching: Optional[BatchConfig] = None,
        caching: Optional[CacheConfig] = None,
        replication: Optional[ReplicationConfig] = None,
        qos: Optional[QoSConfig] = None,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        config = resolve_config(
            config,
            owner="SocketCluster",
            termination=termination,
            result_mode=result_mode,
            fault_plan=fault_plan,
            reliable=reliable,
            batching=batching,
            caching=caching,
            replication=replication,
            qos=qos,
        )
        config.require_default(
            "costs", "discipline", "mark_granularity", "gc_contexts", "processes",
            transport="sockets",
        )
        self.config = config
        termination = config.termination
        result_mode = config.result_mode
        fault_plan = config.fault_plan
        reliable = config.reliable
        batching = config.batching
        caching = config.caching
        replication = config.replication
        qos = config.qos
        names = [f"site{i}" for i in range(sites)] if isinstance(sites, int) else list(sites)
        strategy = make_strategy(termination)
        self.stores: Dict[str, MemStore] = {}
        self.nodes: Dict[str, ServerNode] = {}
        self._sites: Dict[str, _SocketSite] = {}
        self._init_queries(qos)
        self._closed = False
        self._down: set = set()
        self._down_lock = threading.Lock()
        self._timers: Optional[TimerThread] = None
        self._timers_lock = threading.Lock()
        self.fault_plan: Optional[FaultPlan] = None
        self._endpoints: Optional[Dict[str, ReliableEndpoint]] = None
        self._reliable_config: Optional[ReliableConfig] = None
        self.messages_dropped = 0
        #: Envelopes whose delivery was abandoned (reliable-channel give-up),
        #: recorded for diagnostics exactly like the threaded transport.
        self.undeliverable: List[Envelope] = []
        directory = (
            ReplicaDirectory() if replication is not None and replication.enabled else None
        )
        for name in names:
            store = MemStore(name)
            node = ServerNode(
                name,
                store,
                costs=FREE_COSTS,
                termination=strategy,
                result_mode=result_mode,
                on_query_complete=self._on_complete,
                is_site_up=self.is_up,
                batching=batching,
                caching=caching,
                replicas=directory,
                qos=qos,
            )
            node.now_fn = time.monotonic
            self.stores[name] = store
            self.nodes[name] = node
            self._sites[name] = _SocketSite(node, self)
        self.replication: Optional[ReplicationManager] = None
        if directory is not None:
            assert replication is not None
            self.replication = ReplicationManager(
                replication,
                self.stores,
                {name: node.forwarding for name, node in self.nodes.items()},
                directory,
            )
            for node in self.nodes.values():
                self.replication.add_epoch_listener(node.observe_epoch)
        self._init_membership(config)
        self._init_telemetry(config)
        for site in self._sites.values():
            site.start()
        if reliable:
            self.enable_reliable(reliable if isinstance(reliable, ReliableConfig) else None)
        if fault_plan is not None:
            self.use_faults(fault_plan)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._stop_stats_stream()
        if self._endpoints is not None:
            for endpoint in self._endpoints.values():
                endpoint.close()
        if self._timers is not None:
            self._timers.stop()
        for site in self._sites.values():
            site.stop()

    def __enter__(self) -> "SocketCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data ----------------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        return list(self.nodes)

    def store(self, site: str) -> MemStore:
        try:
            return self.stores[site]
        except KeyError:
            raise UnknownSite(site) from None

    def port_of(self, site: str) -> int:
        try:
            return self._sites[site].port
        except KeyError:
            raise UnknownSite(site) from None

    def bytes_on_the_wire(self) -> int:
        return sum(site.bytes_sent for site in self._sites.values())

    # -- availability ---------------------------------------------------------

    def is_up(self, site: str) -> bool:
        with self._down_lock:
            return site not in self._down

    def is_down(self, site: str) -> bool:
        return not self.is_up(site)

    def set_down(self, site: str) -> None:
        """Freeze a site's worker; frames sent to it are dropped at the wire."""
        if site not in self._sites:
            raise UnknownSite(site)
        with self._down_lock:
            self._down.add(site)

    def set_up(self, site: str) -> None:
        if site not in self._sites:
            raise UnknownSite(site)
        with self._down_lock:
            self._down.discard(site)
        self._sites[site].inbox.put(None)  # wake the frozen worker

    # -- fault injection ------------------------------------------------------

    def use_faults(self, plan: FaultPlan) -> None:
        """Attach a chaos schedule; scheduled crashes start arming now."""
        for crash in plan.crashes:
            if crash.site not in self._sites:
                raise UnknownSite(crash.site)
        self.fault_plan = plan
        timers = self._timer_thread()
        for crash in plan.crashes:
            timers.schedule(crash.at, lambda s=crash.site: self.set_down(s))
            if crash.recover_at is not None:
                timers.schedule(crash.recover_at, lambda s=crash.site: self.set_up(s))

    def enable_reliable(self, config: Optional[ReliableConfig] = None) -> None:
        """Interpose the reliable-delivery channel on every link."""
        self._reliable_config = config if config is not None else ReliableConfig()
        timers = self._timer_thread()
        self._endpoints = {
            name: ReliableEndpoint(
                name,
                clock=timers.now,
                scheduler=timers.schedule,
                send_raw=site._send_raw,
                # on_wire runs on the destination's worker thread with its
                # node lock held, so deliver straight into the node.
                deliver_up=lambda env, n=site.node: n.on_message(env),
                node=site.node,
                config=self._reliable_config,
                on_give_up=self._give_up,
            )
            for name, site in self._sites.items()
        }

    @property
    def reliable_enabled(self) -> bool:
        return self._endpoints is not None

    def _endpoint_for(self, site: str) -> Optional[ReliableEndpoint]:
        if self._endpoints is None:
            return None
        return self._endpoints.get(site)

    def _reliable_ingest(self, env: Envelope) -> None:
        """A reliable-channel frame arrived at ``env.dst``'s worker."""
        endpoint = self._endpoint_for(env.dst)
        if endpoint is not None:
            endpoint.on_wire(env)

    def _give_up(self, env: Envelope) -> None:
        """Retries exhausted: recover detector state like a bounce would."""
        self.undeliverable.append(env)
        if not isinstance(env.payload, (DerefRequest, BatchedQuery, SeedFromSaved)):
            return
        site = self._sites.get(env.src)
        if site is None:
            return
        site.inbox.put(Envelope(env.dst, env.src, Undeliverable(env), spans=env.spans))

    def _timer_thread(self) -> TimerThread:
        with self._timers_lock:
            if self._timers is None:
                self._timers = TimerThread(name="hf-sockets-timers")
            return self._timers

    # -- queries --------------------------------------------------------------
    # submit / wait / run_query / run_followup / total_stats come from
    # WallClockQueries; this transport only supplies the dispatch hooks.

    def node(self, site: str) -> ServerNode:
        try:
            return self.nodes[site]
        except KeyError:
            raise UnknownSite(site) from None

    def _dispatch_submit(
        self,
        origin: str,
        qid: QueryId,
        program: Program,
        initial: List[Oid],
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> None:
        self._sites[origin].submit(qid, program, initial, priority, tenant)

    def _dispatch_submit_from_saved(
        self, origin: str, qid: QueryId, program: Program, source_qid: QueryId
    ) -> None:
        self._sites[origin].submit_from_saved(qid, program, source_qid)

    def _dispatch_expire(self, origin: str, qid: QueryId) -> None:
        site = self._sites[origin]
        with site._node_lock:
            report = site.node.expire_query(qid)
        for env in report.outgoing:
            site._send(env)
