"""Structured, causal query tracing.

Understanding a distributed traversal ("why did this query visit that
site twice?") needs more than aggregate counters.  A :class:`QueryTracer`
attached to a cluster records one event per interesting step — message
sends/receives, object processing, drains, completions — with virtual
timestamps, and renders them as a readable timeline.

Every event is also a **span**: it carries a tracer-unique ``span`` id
and an optional ``parent`` span id, and :meth:`QueryTracer.emit` returns
the id so callers can thread causality through their own state.  The
server nodes propagate these ids *inside message envelopes* (see
``Envelope.spans`` in :mod:`repro.net.messages`), so a traced query
reconstructs into a causal tree rooted at its ``submit`` event — the
input of the critical-path analysis in :mod:`repro.profiling`.

Usage::

    cluster = SimCluster(3)
    tracer = QueryTracer()
    cluster.attach_tracer(tracer)
    cluster.run_query(...)
    print(tracer.render())

Tracing is strictly optional: nodes check a single attribute before
emitting, so the untraced fast path costs one `is None` test.

Exports: :meth:`QueryTracer.to_jsonl` (one JSON object per event) and
:meth:`QueryTracer.to_chrome_trace` (Chrome trace-event format, loadable
in Perfetto / ``chrome://tracing``, with flow arrows along cross-site
span edges).  :func:`validate_chrome_trace` checks an exported document
against the trace-event schema (``ph``/``ts``/``pid``/``tid``).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

#: Event kinds emitted by the server nodes.
KINDS = (
    "submit",      #: query installed at its originator
    "send",        #: a message left a site
    "recv",        #: a message was ingested by a site
    "process",     #: one object pushed through the filters
    "skip",        #: an admission the mark table suppressed
    "drain",       #: a site's working set emptied (results/credit shipped)
    "complete",    #: the originator's termination detector fired
    "retransmit",  #: reliable channel re-sent an unacked frame
    "dup",         #: reliable channel suppressed a replayed frame
    "timeout",     #: a query deadline expired (partial completion)
    "batch_flush",  #: a send queue flushed into a batched frame
    "batch_recv",   #: a batched frame was ingested and unbatched
    "shed",        #: arriving work dropped by QoS load shedding (credit kept)
    "slo",         #: originator SLO watermarks stamped at completion
    "stats_push",  #: a periodic streaming-stats sample was published
    "flightrec",   #: the flight recorder dumped its ring to disk
    "member",      #: the membership view changed (join/leave/depart/fail)
    "rebalance",   #: a view change re-placed objects around the ring
    "heartbeat",   #: a gossip liveness frame was ingested
)

#: Swim-lane glyph per kind, most significant first (lane rendering keeps
#: the highest-ranked event of each time bucket).
_LANE_GLYPHS = (
    ("complete", "C"),
    ("timeout", "T"),
    ("flightrec", "F"),
    ("member", "M"),
    ("rebalance", "R"),
    ("submit", "Q"),
    ("slo", "$"),
    ("process", "#"),
    ("retransmit", "!"),
    ("dup", "="),
    ("batch_flush", "^"),
    ("batch_recv", "v"),
    ("send", ">"),
    ("recv", "<"),
    ("drain", "d"),
    ("stats_push", "s"),
    ("heartbeat", "h"),
    ("skip", "."),
)
#: Precomputed rank lookups (by kind and by rendered glyph) so lane
#: rendering is O(1) per event instead of scanning the kind order.
_KIND_RANK: Dict[str, int] = {kind: rank for rank, (kind, _) in enumerate(_LANE_GLYPHS)}
_KIND_GLYPH: Dict[str, str] = {kind: glyph for kind, glyph in _LANE_GLYPHS}
_GLYPH_RANK: Dict[str, int] = {glyph: rank for rank, (_, glyph) in enumerate(_LANE_GLYPHS)}
_LANE_LEGEND = " ".join(f"{glyph}={kind}" for kind, glyph in _LANE_GLYPHS)


@dataclass(frozen=True)
class TraceEvent:
    """One step of a traced run (a span in the query's causal tree)."""

    time: float
    site: str
    kind: str
    qid: str = ""
    detail: Dict[str, Any] = field(default_factory=dict)
    #: Tracer-unique span id (0 only for hand-built events in tests).
    span: int = 0
    #: Span id of the event that caused this one; None at tree roots.
    parent: Optional[int] = None

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:9.4f}s] {self.site:<8} {self.kind:<8} {self.qid:<12} {detail}"


class QueryTracer:
    """Collects :class:`TraceEvent` records from an instrumented cluster."""

    def __init__(
        self,
        kinds: Optional[Iterable[str]] = None,
        capacity: int = 100_000,
        span_start: int = 1,
        span_step: int = 1,
    ) -> None:
        """
        Parameters
        ----------
        kinds:
            Restrict recording to these event kinds (default: all).
            Filtering breaks parent chains through suppressed kinds, so
            causal analyses expect an unfiltered tracer.
        capacity:
            Hard cap on stored events; beyond it, recording stops and
            :attr:`dropped` counts the overflow (tracing a runaway query
            must not exhaust memory).
        span_start / span_step:
            First span id and allocation stride.  The defaults give the
            classic dense ``1, 2, 3, ...`` sequence; process mode gives
            child *i* of *n* sites ``span_start=i+1, span_step=n`` so
            span ids shipped from different processes never collide and
            need no remapping at the parent.
        """
        chosen = set(kinds) if kinds is not None else set(KINDS)
        unknown = chosen - set(KINDS)
        if unknown:
            raise ValueError(f"unknown trace kinds: {sorted(unknown)}")
        self._kinds = chosen
        self._capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0
        #: itertools.count is effectively atomic under CPython, so span
        #: allocation is safe from the real transports' site threads.
        self._ids = itertools.count(span_start, span_step)
        #: Supplies timestamps; the cluster points this at the simulator.
        self.now_fn: Callable[[], float] = lambda: 0.0

    # -- recording ---------------------------------------------------------

    def emit(
        self, site: str, kind: str, qid: Any = "", parent: Optional[int] = None, **detail: Any
    ) -> Optional[int]:
        """Record one event; returns its span id (None when not recorded)."""
        return self._record_new(site, kind, qid, parent, detail)

    def _record_new(
        self, site: str, kind: str, qid: Any, parent: Optional[int], detail: Dict[str, Any]
    ) -> Optional[int]:
        """:meth:`emit`'s engine, named so forwarding tracers (tee,
        flight recorder) can delegate without a dynamic ``.emit`` call —
        the trace-kind AST audit requires every ``.emit`` site to carry
        a literal kind."""
        if kind not in self._kinds:
            return None
        if len(self.events) >= self._capacity:
            self.dropped += 1
            return None
        span = next(self._ids)
        self.events.append(
            TraceEvent(
                time=self.now_fn(), site=site, kind=kind, qid=str(qid),
                detail=detail, span=span, parent=parent,
            )
        )
        return span

    def ingest(self, events: Iterable[TraceEvent]) -> int:
        """Append pre-built events (spans shipped from another process).

        Span ids are taken as-is — the shipper is responsible for
        allocating from a non-colliding namespace (see ``span_start`` /
        ``span_step``).  Capacity still applies; returns the number of
        events actually stored.
        """
        stored = 0
        for event in events:
            if event.kind not in self._kinds:
                continue
            if len(self.events) >= self._capacity:
                self.dropped += 1
                continue
            self.events.append(event)
            stored += 1
        return stored

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    # -- analysis -------------------------------------------------------------

    def count(self, kind: Optional[str] = None, site: Optional[str] = None) -> int:
        return sum(
            1
            for e in self.events
            if (kind is None or e.kind == kind) and (site is None or e.site == site)
        )

    def for_query(self, qid: Any) -> List[TraceEvent]:
        wanted = str(qid)
        return [e for e in self.events if e.qid == wanted]

    def by_span(self) -> Dict[int, TraceEvent]:
        """Span-id index over every recorded event."""
        return {e.span: e for e in self.events if e.span}

    def sites_touched(self, qid: Any) -> List[str]:
        """Sites that did work for a query, in first-touch order."""
        seen: List[str] = []
        for event in self.for_query(qid):
            if event.kind in ("process", "recv", "submit") and event.site not in seen:
                seen.append(event.site)
        return seen

    def completion_time(self, qid: Any) -> Optional[float]:
        for event in self.for_query(qid):
            if event.kind == "complete":
                return event.time
        return None

    def busy_intervals(self) -> Dict[str, int]:
        """Processing-step counts per site (a cheap utilisation view)."""
        out: Dict[str, int] = {}
        for event in self.events:
            if event.kind == "process":
                out[event.site] = out.get(event.site, 0) + 1
        return out

    # -- rendering --------------------------------------------------------------

    def render_lanes(self, buckets: int = 48) -> str:
        """Per-site swim lanes: what each site was doing, over time.

        Each column is one time bucket; the glyph is the bucket's most
        significant event at that site (see ``_LANE_GLYPHS`` for the
        precedence order).
        """
        if not self.events:
            return "(no events recorded)"
        t0 = self.events[0].time
        t1 = max(e.time for e in self.events)
        span = max(t1 - t0, 1e-9)
        sites = sorted({e.site for e in self.events})
        grid = {site: [" "] * buckets for site in sites}
        worst = len(_LANE_GLYPHS)
        for event in self.events:
            bucket = min(buckets - 1, int((event.time - t0) / span * buckets))
            current_rank = _GLYPH_RANK.get(grid[event.site][bucket], worst)
            new_rank = _KIND_RANK.get(event.kind, worst)
            if new_rank < current_rank:
                grid[event.site][bucket] = _KIND_GLYPH[event.kind]
        width = max(len(s) for s in sites)
        lines = [f"{site:>{width}} |{''.join(grid[site])}|" for site in sites]
        lines.append(f"{'':>{width}}  {t0:.3f}s{'':<{max(1, buckets - 14)}}{t1:.3f}s")
        lines.append(f"{'':>{width}}  {_LANE_LEGEND}")
        return "\n".join(lines)

    def render(self, limit: Optional[int] = None) -> str:
        """Chronological, human-readable timeline."""
        events = self.events if limit is None else self.events[:limit]
        lines = [str(e) for e in events]
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (capacity {self._capacity})")
        elif limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines) if lines else "(no events recorded)"

    def __len__(self) -> int:
        return len(self.events)

    # -- exporters ---------------------------------------------------------

    def to_jsonl(self, qid: Any = None) -> str:
        """One JSON object per event (ndjson), optionally one query only."""
        events = self.events if qid is None else self.for_query(qid)
        lines = []
        for e in events:
            record = {
                "t": e.time, "site": e.site, "kind": e.kind, "qid": e.qid,
                "span": e.span, "parent": e.parent,
            }
            record.update({k: _jsonable(v) for k, v in e.detail.items()})
            lines.append(json.dumps(record))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str, qid: Any = None) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns the event count."""
        text = self.to_jsonl(qid)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return text.count("\n")

    def to_chrome_trace(self, qid: Any = None) -> Dict[str, Any]:
        """Chrome trace-event document (Perfetto / ``chrome://tracing``).

        Sites map to threads of one process; every event is an instant
        ("ph": "i") on its site's lane, and each cross-site parent edge
        becomes a flow-arrow pair ("s"/"f") so the viewer draws message
        causality between lanes.  Timestamps are microseconds.
        """
        events = self.events if qid is None else self.for_query(qid)
        sites = sorted({e.site for e in events})
        tid_of = {site: i + 1 for i, site in enumerate(sites)}
        trace: List[Dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "hyperfile"}},
        ]
        for site, tid in tid_of.items():
            trace.append(
                {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                 "args": {"name": site}}
            )
        by_span = {e.span: e for e in events if e.span}
        for e in events:
            args = {"qid": e.qid, "span": e.span, "parent": e.parent}
            args.update({k: _jsonable(v) for k, v in e.detail.items()})
            trace.append(
                {"name": e.kind, "cat": e.kind, "ph": "i", "s": "t",
                 "ts": e.time * 1e6, "pid": 1, "tid": tid_of[e.site], "args": args}
            )
            parent = by_span.get(e.parent) if e.parent is not None else None
            if parent is not None and parent.site != e.site:
                flow = {"name": "causal", "cat": "flow", "pid": 1, "id": e.span}
                trace.append(
                    {**flow, "ph": "s", "ts": parent.time * 1e6, "tid": tid_of[parent.site]}
                )
                trace.append(
                    {**flow, "ph": "f", "bp": "e", "ts": e.time * 1e6, "tid": tid_of[e.site]}
                )
        return {"traceEvents": trace, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str, qid: Any = None) -> int:
        """Write :meth:`to_chrome_trace` to ``path``; returns event count."""
        doc = self.to_chrome_trace(qid)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
            fh.write("\n")
        return len(doc["traceEvents"])


@dataclass(frozen=True)
class FlightRecorderConfig:
    """Configuration for the per-site crash flight recorder.

    The recorder is a bounded ring of the most recent trace events —
    always on once configured, cheap enough to leave armed in
    production, and dumped automatically when a query dies badly
    (``TerminationLost``, ``partial_reason="crash"``, deadline expiry).
    """

    #: Ring size in events; oldest events are evicted, never dropped.
    capacity: int = 2048
    #: Directory dumps are written to; ``None`` keeps dumps in memory
    #: only (``FlightRecorder.last_dump``), which tests rely on.
    dump_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")


class FlightRecorder(QueryTracer):
    """A :class:`QueryTracer` with ring-buffer (evict-oldest) semantics.

    Where the base tracer stops recording at capacity (postmortems want
    the *oldest* events of a bounded run), the flight recorder keeps the
    *newest* — the moments right before a crash or a lost termination.
    :attr:`dropped` counts evictions.
    """

    def __init__(
        self,
        config: Optional[FlightRecorderConfig] = None,
        span_start: int = 1,
        span_step: int = 1,
    ) -> None:
        self.config = config if config is not None else FlightRecorderConfig()
        super().__init__(
            capacity=self.config.capacity, span_start=span_start, span_step=span_step
        )
        #: Events captured by the most recent :meth:`dump` (memory-only
        #: postmortems when ``dump_dir`` is None).
        self.last_dump: List[TraceEvent] = []
        #: Reasons of every dump taken, in order.
        self.dump_reasons: List[str] = []

    def _record_new(
        self, site: str, kind: str, qid: Any, parent: Optional[int], detail: Dict[str, Any]
    ) -> Optional[int]:
        if len(self.events) >= self._capacity:
            del self.events[: len(self.events) - self._capacity + 1]
            self.dropped += 1
        return super()._record_new(site, kind, qid, parent, detail)

    def record(self, event: TraceEvent) -> None:
        """Ring-append one pre-built event (the tee/shipping path)."""
        if event.kind not in self._kinds:
            return
        if len(self.events) >= self._capacity:
            del self.events[: len(self.events) - self._capacity + 1]
            self.dropped += 1
        self.events.append(event)

    def dump(self, qid: Any = "", reason: str = "manual", site: str = "cluster") -> Dict[str, Any]:
        """Snapshot the ring: JSON-lines + Perfetto files when a
        ``dump_dir`` is configured, memory-only otherwise.

        Emits a ``flightrec`` event marking the dump (it lands in the
        ring *after* the snapshot, so the artifact is the pre-dump
        state).  Returns ``{"events", "reason", "jsonl", "chrome"}``;
        the paths are ``None`` on a memory-only dump.
        """
        snapshot = list(self.events)
        self.last_dump = snapshot
        self.dump_reasons.append(reason)
        jsonl_path = chrome_path = None
        if self.config.dump_dir is not None:
            import os

            os.makedirs(self.config.dump_dir, exist_ok=True)
            stem = f"flightrec-{_path_safe(str(qid)) or 'cluster'}-{_path_safe(reason)}"
            frozen = QueryTracer(capacity=len(snapshot) + 1)
            frozen.events = snapshot
            jsonl_path = os.path.join(self.config.dump_dir, stem + ".jsonl")
            frozen.write_jsonl(jsonl_path)
            chrome_path = os.path.join(self.config.dump_dir, stem + ".json")
            frozen.write_chrome_trace(chrome_path)
        self.emit(site, "flightrec", "", reason=reason, for_qid=str(qid), events=len(snapshot))
        return {"events": snapshot, "reason": reason, "jsonl": jsonl_path, "chrome": chrome_path}


class TeeTracer:
    """Duplicates every emitted event into a :class:`FlightRecorder`.

    Used when a user tracer is attached *and* the flight recorder is
    armed: nodes hold one ``tracer`` attribute, so the tee presents the
    primary tracer's interface (same span ids — the ring holds the very
    event objects the primary recorded) while keeping the ring current.
    """

    def __init__(self, primary: QueryTracer, recorder: FlightRecorder) -> None:
        self.primary = primary
        self.recorder = recorder

    @property
    def now_fn(self) -> Callable[[], float]:
        return self.primary.now_fn

    @now_fn.setter
    def now_fn(self, fn: Callable[[], float]) -> None:
        self.primary.now_fn = fn
        self.recorder.now_fn = fn

    def emit(
        self, site: str, kind: str, qid: Any = "", parent: Optional[int] = None, **detail: Any
    ) -> Optional[int]:
        span = self.primary._record_new(site, kind, qid, parent, detail)
        if span is not None:
            self.recorder.record(self.primary.events[-1])
        else:
            # Primary at capacity (or filtering): the ring still records,
            # with its own span ids — a postmortem beats a perfect tree.
            span = self.recorder._record_new(site, kind, qid, parent, detail)
        return span

    @property
    def events(self) -> List[TraceEvent]:
        return self.primary.events

    def __getattr__(self, name: str) -> Any:
        return getattr(self.primary, name)


def events_from_jsonl(path: str) -> List[TraceEvent]:
    """Load a :meth:`QueryTracer.to_jsonl` / flight-recorder dump back
    into :class:`TraceEvent` records (inputs to the profiling analyses,
    notably ``credit_audit`` over a crash dump)."""
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            detail = {
                k: v for k, v in record.items()
                if k not in ("t", "site", "kind", "qid", "span", "parent")
            }
            events.append(
                TraceEvent(
                    time=record["t"], site=record["site"], kind=record["kind"],
                    qid=record.get("qid", ""), detail=detail,
                    span=record.get("span", 0), parent=record.get("parent"),
                )
            )
    return events


def _path_safe(text: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in text)


#: Phase values the trace-event format defines (the subset we emit plus
#: the common ones, so validation is useful on foreign documents too).
_CHROME_PHASES = frozenset("BEXibnesftPNODMCRcS(,)")


def validate_chrome_trace(doc: Any) -> Dict[str, int]:
    """Validate a Chrome trace-event document's required fields.

    Checks the schema every trace-event consumer relies on: a
    ``traceEvents`` list whose entries all carry ``ph`` (a known phase),
    a numeric non-negative ``ts`` (metadata events may omit it), and
    integer ``pid``/``tid``.  Raises :class:`ValueError` on the first
    violation; returns counts (events, flows, instants) when valid.
    """
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("not a trace-event document: missing traceEvents list")
    counts = {"events": 0, "instants": 0, "flows": 0, "metadata": 0}
    for i, event in enumerate(doc["traceEvents"]):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or ph not in _CHROME_PHASES:
            raise ValueError(f"traceEvents[{i}] has invalid ph: {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"traceEvents[{i}] missing integer {key}")
        if ph == "M":
            counts["metadata"] += 1
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"traceEvents[{i}] missing non-negative ts")
        counts["events"] += 1
        if ph == "i":
            counts["instants"] += 1
        elif ph in ("s", "f", "t"):
            counts["flows"] += 1
    return counts


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
