"""Structured query tracing.

Understanding a distributed traversal ("why did this query visit that
site twice?") needs more than aggregate counters.  A :class:`QueryTracer`
attached to a cluster records one event per interesting step — message
sends/receives, object processing, drains, completions — with virtual
timestamps, and renders them as a readable timeline.

Usage::

    cluster = SimCluster(3)
    tracer = QueryTracer()
    cluster.attach_tracer(tracer)
    cluster.run_query(...)
    print(tracer.render())

Tracing is strictly optional: nodes check a single attribute before
emitting, so the untraced fast path costs one `is None` test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

#: Event kinds emitted by the server nodes.
KINDS = (
    "submit",      #: query installed at its originator
    "send",        #: a message left a site
    "recv",        #: a message was ingested by a site
    "process",     #: one object pushed through the filters
    "skip",        #: an admission the mark table suppressed
    "drain",       #: a site's working set emptied (results/credit shipped)
    "complete",    #: the originator's termination detector fired
    "retransmit",  #: reliable channel re-sent an unacked frame
    "dup",         #: reliable channel suppressed a replayed frame
    "timeout",     #: a query deadline expired (partial completion)
    "batch_flush",  #: a send queue flushed into a batched frame
    "batch_recv",   #: a batched frame was ingested and unbatched
)


@dataclass(frozen=True)
class TraceEvent:
    """One step of a traced run."""

    time: float
    site: str
    kind: str
    qid: str = ""
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:9.4f}s] {self.site:<8} {self.kind:<8} {self.qid:<12} {detail}"


class QueryTracer:
    """Collects :class:`TraceEvent` records from an instrumented cluster."""

    def __init__(self, kinds: Optional[Iterable[str]] = None, capacity: int = 100_000) -> None:
        """
        Parameters
        ----------
        kinds:
            Restrict recording to these event kinds (default: all).
        capacity:
            Hard cap on stored events; beyond it, recording stops and
            :attr:`dropped` counts the overflow (tracing a runaway query
            must not exhaust memory).
        """
        chosen = set(kinds) if kinds is not None else set(KINDS)
        unknown = chosen - set(KINDS)
        if unknown:
            raise ValueError(f"unknown trace kinds: {sorted(unknown)}")
        self._kinds = chosen
        self._capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0
        #: Supplies timestamps; the cluster points this at the simulator.
        self.now_fn: Callable[[], float] = lambda: 0.0

    # -- recording ---------------------------------------------------------

    def emit(self, site: str, kind: str, qid: Any = "", **detail: Any) -> None:
        if kind not in self._kinds:
            return
        if len(self.events) >= self._capacity:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(time=self.now_fn(), site=site, kind=kind, qid=str(qid), detail=detail)
        )

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    # -- analysis -------------------------------------------------------------

    def count(self, kind: Optional[str] = None, site: Optional[str] = None) -> int:
        return sum(
            1
            for e in self.events
            if (kind is None or e.kind == kind) and (site is None or e.site == site)
        )

    def for_query(self, qid: Any) -> List[TraceEvent]:
        wanted = str(qid)
        return [e for e in self.events if e.qid == wanted]

    def sites_touched(self, qid: Any) -> List[str]:
        """Sites that did work for a query, in first-touch order."""
        seen: List[str] = []
        for event in self.for_query(qid):
            if event.kind in ("process", "recv", "submit") and event.site not in seen:
                seen.append(event.site)
        return seen

    def completion_time(self, qid: Any) -> Optional[float]:
        for event in self.for_query(qid):
            if event.kind == "complete":
                return event.time
        return None

    def busy_intervals(self) -> Dict[str, int]:
        """Processing-step counts per site (a cheap utilisation view)."""
        out: Dict[str, int] = {}
        for event in self.events:
            if event.kind == "process":
                out[event.site] = out.get(event.site, 0) + 1
        return out

    # -- rendering --------------------------------------------------------------

    def render_lanes(self, buckets: int = 48) -> str:
        """Per-site swim lanes: what each site was doing, over time.

        Each column is one time bucket; the glyph is the bucket's most
        significant event at that site (completion > processing > message
        traffic > drain > skip).
        """
        if not self.events:
            return "(no events recorded)"
        precedence = {"complete": "C", "submit": "Q", "process": "#",
                      "send": ">", "recv": "<", "drain": "d", "skip": "."}
        order = ["complete", "submit", "process", "send", "recv", "drain", "skip"]
        t0 = self.events[0].time
        t1 = max(e.time for e in self.events)
        span = max(t1 - t0, 1e-9)
        sites = sorted({e.site for e in self.events})
        grid = {site: [" "] * buckets for site in sites}
        for event in self.events:
            bucket = min(buckets - 1, int((event.time - t0) / span * buckets))
            cell = grid[event.site][bucket]
            current_rank = next((i for i, k in enumerate(order) if precedence[k] == cell), len(order))
            new_rank = order.index(event.kind) if event.kind in precedence else len(order)
            if new_rank < current_rank:
                grid[event.site][bucket] = precedence[event.kind]
        width = max(len(s) for s in sites)
        lines = [f"{site:>{width}} |{''.join(grid[site])}|" for site in sites]
        lines.append(f"{'':>{width}}  {t0:.3f}s{'':<{max(1, buckets - 14)}}{t1:.3f}s")
        lines.append(f"{'':>{width}}  Q=submit #=process >=send <=recv d=drain .=skip C=complete")
        return "\n".join(lines)

    def render(self, limit: Optional[int] = None) -> str:
        """Chronological, human-readable timeline."""
        events = self.events if limit is None else self.events[:limit]
        lines = [str(e) for e in events]
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (capacity {self._capacity})")
        elif limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines) if lines else "(no events recorded)"

    def __len__(self) -> int:
        return len(self.events)
