"""Application-facing client API (the embedded query language, paper §2)."""

from .api import HyperFile
from .session import Session
from .sets import combine_sets, difference, intersection, union

__all__ = ["HyperFile", "Session", "combine_sets", "difference", "intersection", "union"]
