"""Convenience facade: build a working HyperFile deployment in one call.

This is the "five-minute quickstart" layer used by the examples; power
users assemble :class:`~repro.cluster.SimCluster` pieces directly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..api import transport_factory, transport_names
from ..cache import CacheConfig
from ..config import ClusterConfig, resolve_config
from ..core.oid import Oid
from ..core.tuples import HFTuple
from ..net.batching import BatchConfig
from ..qos import QoSConfig
from ..replication import ReplicationConfig
from ..sim.costs import CostModel, PAPER_COSTS
from .session import Session


#: Transport names known at import time — a snapshot of the
#: :mod:`repro.api` registry (use :func:`repro.api.transport_names` for
#: the live view including late registrations).
TRANSPORTS: Tuple[str, ...] = tuple(transport_names())


class HyperFile:
    """A ready-to-use HyperFile service (cluster + session).

    Example::

        hf = HyperFile(sites=3)
        paper = hf.create("site0",
                          string_tuple("Title", "HyperFile"),
                          keyword_tuple("Distributed"))
        hf.define_set("S", [paper])
        hf.query('S (Keyword, "Distributed", ?) -> T')
        hf.members("T")   # -> [paper]

    ``transport`` selects the deployment behind the same session API,
    resolved through the :mod:`repro.api` transport registry: ``"sim"``
    (default — discrete-event, calibrated virtual time), ``"threaded"``
    (real threads, objects by reference), ``"sockets"`` (real TCP frames
    on loopback, one thread per connection) or ``"async"`` (framed TCP
    on an asyncio event loop; ``ClusterConfig(processes=True)`` runs one
    OS process per site).  Third-party transports registered with
    :func:`repro.api.register_transport` work here too.  Every transport
    implements :class:`~repro.api.ClusterAPI`, so everything above them
    is shared.

    All tuning — batching, caching, replication, QoS, faults, async
    knobs — rides in one frozen :class:`~repro.config.ClusterConfig`
    passed as ``config=``.  The historical per-feature kwargs
    (``batching=``, ``caching=``, ``replication=``, ``qos=``) keep
    working as deprecated aliases that build the equivalent config (and
    emit :class:`DeprecationWarning`); mixing them with ``config=`` is
    an error.  The pre-transport constructor signature (``sites``,
    ``costs``, ``termination``, ``result_mode``) keeps working unchanged
    and implies ``transport="sim"``; note that ``costs`` only has
    meaning there — the wall-clock transports run uncosted and reject a
    non-default cost model rather than silently ignoring it.
    """

    def __init__(
        self,
        sites: Union[int, Sequence[str]] = 1,
        costs: CostModel = PAPER_COSTS,
        termination: str = "weighted",
        result_mode: str = "ship",
        transport: str = "sim",
        batching: Optional[BatchConfig] = None,
        caching: Optional[CacheConfig] = None,
        replication: Optional[ReplicationConfig] = None,
        qos: Optional[QoSConfig] = None,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        factory = transport_factory(transport)  # ValueError on unknown names
        config = resolve_config(
            config,
            owner="HyperFile",
            termination=termination,
            result_mode=result_mode,
            costs=None if costs is PAPER_COSTS else costs,
            batching=batching,
            caching=caching,
            replication=replication,
            qos=qos,
        )
        self.cluster = factory(sites, config=config)
        self.config = config
        self.transport = transport
        self.session = Session(self.cluster)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the transport down (a no-op on the simulator)."""
        self.cluster.close()

    def __enter__(self) -> "HyperFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data --------------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        return self.cluster.sites

    def create(self, site: str, *tuples: HFTuple) -> Oid:
        """Store a new object at ``site``; returns its id."""
        return self.cluster.store(site).create(list(tuples)).oid

    def update(self, oid: Oid, *tuples: HFTuple) -> None:
        """Add tuples to an existing object (functional replace)."""
        site = self.cluster.node(self.session.home_site).locate(oid)
        store = self.cluster.store(site)
        store.replace(store.get(oid).with_tuples(tuples))

    def get(self, oid: Oid):
        """Read an object back (application-side debugging aid)."""
        site = self.cluster.node(self.session.home_site).locate(oid)
        return self.cluster.store(site).get(oid)

    def migrate(self, oid: Oid, to_site: str) -> Oid:
        return self.cluster.migrate(oid, to_site)

    def replicate_all(self) -> int:
        """Install the configured k replica copies of every object."""
        return self.cluster.replicate_all()

    # -- sets & queries -----------------------------------------------------

    def define_set(self, name: str, members: Iterable[Oid]) -> None:
        self.session.define_set(name, members)

    def members(self, name: str) -> List[Oid]:
        return self.session.set_members(name)

    def query(self, text: str) -> List[Oid]:
        """Run a query in the textual language; returns result oids."""
        return self.session.query(text)

    def retrieve(self, var: str) -> List[object]:
        """Values shipped by ``->var`` retrieval filters."""
        return self.session.retrieve(var)

    @property
    def last_response_time(self) -> Optional[float]:
        """Virtual response time of the most recent query (seconds)."""
        return self.session.last_response_time
