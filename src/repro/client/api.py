"""Convenience facade: build a working HyperFile deployment in one call.

This is the "five-minute quickstart" layer used by the examples; power
users assemble :class:`~repro.cluster.SimCluster` pieces directly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from ..cache import CacheConfig
from ..cluster import SimCluster
from ..core.oid import Oid
from ..core.tuples import HFTuple
from ..errors import HyperFileError
from ..net.batching import BatchConfig
from ..qos import QoSConfig
from ..replication import ReplicationConfig
from ..sim.costs import CostModel, PAPER_COSTS
from .session import Session

#: Transport name -> cluster factory arguments it understands.
TRANSPORTS = ("sim", "threaded", "sockets")


class HyperFile:
    """A ready-to-use HyperFile service (cluster + session).

    Example::

        hf = HyperFile(sites=3)
        paper = hf.create("site0",
                          string_tuple("Title", "HyperFile"),
                          keyword_tuple("Distributed"))
        hf.define_set("S", [paper])
        hf.query('S (Keyword, "Distributed", ?) -> T')
        hf.members("T")   # -> [paper]

    ``transport`` selects the deployment behind the same session API:
    ``"sim"`` (default — discrete-event, calibrated virtual time),
    ``"threaded"`` (real threads, objects by reference) or ``"sockets"``
    (real TCP frames on loopback).  All three implement
    :class:`~repro.api.ClusterAPI`, so everything above them is shared.
    ``batching`` attaches a comms-coalescing config
    (:class:`~repro.net.batching.BatchConfig`) to every site,
    ``caching`` a cross-query caching config
    (:class:`~repro.cache.CacheConfig`; see ``docs/CACHING.md``), and
    ``replication`` a k-way replica config
    (:class:`~repro.replication.ReplicationConfig`; see
    ``docs/REPLICATION.md``) — call :meth:`replicate_all` after loading
    objects to install the copies — and ``qos`` an admission-control /
    service-class config (:class:`~repro.qos.QoSConfig`; see
    ``docs/QOS.md``).  ``qos=None`` (the default) leaves behaviour
    bit-identical to a build without the QoS subsystem.

    The pre-transport constructor signature (``sites``, ``costs``,
    ``termination``, ``result_mode``) keeps working unchanged and implies
    ``transport="sim"``; note that ``costs`` only has meaning there —
    the wall-clock transports run uncosted and reject a non-default
    cost model rather than silently ignoring it.
    """

    def __init__(
        self,
        sites: Union[int, Sequence[str]] = 1,
        costs: CostModel = PAPER_COSTS,
        termination: str = "weighted",
        result_mode: str = "ship",
        transport: str = "sim",
        batching: Optional[BatchConfig] = None,
        caching: Optional[CacheConfig] = None,
        replication: Optional[ReplicationConfig] = None,
        qos: Optional[QoSConfig] = None,
    ) -> None:
        if transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
        if transport == "sim":
            self.cluster = SimCluster(
                sites, costs=costs, termination=termination,
                result_mode=result_mode, batching=batching, caching=caching,
                replication=replication, qos=qos,
            )
        else:
            if costs is not PAPER_COSTS:
                raise HyperFileError(
                    f"a cost model only applies to the simulated transport, not {transport!r}"
                )
            if transport == "threaded":
                from ..net.threaded import ThreadedCluster

                self.cluster = ThreadedCluster(
                    sites, termination=termination,
                    result_mode=result_mode, batching=batching, caching=caching,
                    replication=replication, qos=qos,
                )
            else:
                from ..net.sockets import SocketCluster

                self.cluster = SocketCluster(
                    sites, termination=termination,
                    result_mode=result_mode, batching=batching, caching=caching,
                    replication=replication, qos=qos,
                )
        self.transport = transport
        self.session = Session(self.cluster)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the transport down (a no-op on the simulator)."""
        self.cluster.close()

    def __enter__(self) -> "HyperFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data --------------------------------------------------------------

    @property
    def sites(self) -> List[str]:
        return self.cluster.sites

    def create(self, site: str, *tuples: HFTuple) -> Oid:
        """Store a new object at ``site``; returns its id."""
        return self.cluster.store(site).create(list(tuples)).oid

    def update(self, oid: Oid, *tuples: HFTuple) -> None:
        """Add tuples to an existing object (functional replace)."""
        site = self.cluster.node(self.session.home_site).locate(oid)
        store = self.cluster.store(site)
        store.replace(store.get(oid).with_tuples(tuples))

    def get(self, oid: Oid):
        """Read an object back (application-side debugging aid)."""
        site = self.cluster.node(self.session.home_site).locate(oid)
        return self.cluster.store(site).get(oid)

    def migrate(self, oid: Oid, to_site: str) -> Oid:
        return self.cluster.migrate(oid, to_site)

    def replicate_all(self) -> int:
        """Install the configured k replica copies of every object."""
        return self.cluster.replicate_all()

    # -- sets & queries -----------------------------------------------------

    def define_set(self, name: str, members: Iterable[Oid]) -> None:
        self.session.define_set(name, members)

    def members(self, name: str) -> List[Oid]:
        return self.session.set_members(name)

    def query(self, text: str) -> List[Oid]:
        """Run a query in the textual language; returns result oids."""
        return self.session.query(text)

    def retrieve(self, var: str) -> List[object]:
        """Values shipped by ``->var`` retrieval filters."""
        return self.session.retrieve(var)

    @property
    def last_response_time(self) -> Optional[float]:
        """Virtual response time of the most recent query (seconds)."""
        return self.session.last_response_time
