"""Set algebra over named result sets.

HyperFile sets are first-class: query results bind to names and feed
later queries (paper §2).  Applications composing searches need the
classic combinators over those names — union, intersection, difference —
which the paper leaves to the application layer.  This module provides
them over a :class:`~repro.client.session.Session`'s local sets, with
hint-insensitive identity (two ids naming the same object never count
twice) and stable, first-operand-first ordering.
"""

from __future__ import annotations

from typing import Iterable, List

from ..core.oid import Oid
from ..errors import HyperFileError


def union(*collections: Iterable[Oid]) -> List[Oid]:
    """All objects appearing in any collection, first occurrence kept."""
    seen = set()
    out: List[Oid] = []
    for collection in collections:
        for oid in collection:
            if oid.key() not in seen:
                seen.add(oid.key())
                out.append(oid)
    return out


def intersection(first: Iterable[Oid], *others: Iterable[Oid]) -> List[Oid]:
    """Objects present in every collection, in first-collection order."""
    keep = None
    for other in others:
        keys = {oid.key() for oid in other}
        keep = keys if keep is None else keep & keys
    out: List[Oid] = []
    seen = set()
    for oid in first:
        if (keep is None or oid.key() in keep) and oid.key() not in seen:
            seen.add(oid.key())
            out.append(oid)
    return out


def difference(first: Iterable[Oid], *others: Iterable[Oid]) -> List[Oid]:
    """Objects of the first collection absent from all the others."""
    exclude = set()
    for other in others:
        exclude |= {oid.key() for oid in other}
    out: List[Oid] = []
    seen = set()
    for oid in first:
        if oid.key() not in exclude and oid.key() not in seen:
            seen.add(oid.key())
            out.append(oid)
    return out


OPERATIONS = {
    "union": union,
    "intersection": intersection,
    "difference": difference,
}


def combine_sets(session, result_name: str, operation: str, *set_names: str) -> List[Oid]:
    """Combine named session sets and bind the result to ``result_name``.

    ``operation`` is ``"union"``, ``"intersection"`` or ``"difference"``
    (difference is left-associative: first minus the rest).  Distributed
    sets must be materialised (queried into a local set) first — their
    members live at the sites.
    """
    try:
        op = OPERATIONS[operation]
    except KeyError:
        raise HyperFileError(
            f"unknown set operation {operation!r}; choose from {sorted(OPERATIONS)}"
        ) from None
    if not set_names:
        raise HyperFileError("set operation needs at least one operand")
    members = [session.set_members(name) for name in set_names]
    combined = op(*members)
    session.define_set(result_name, combined)
    return combined
