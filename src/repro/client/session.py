"""Application-facing client sessions.

The HyperFile query interface is "an embedded language" (paper §2): an
application composes queries, names sets, and receives ``→`` retrievals
into its own variables.  A :class:`Session` provides that embedding for
Python programs:

* **named sets** — query sources and results are bound to names; a result
  set "can be used in further queries just like the set S";
* **set objects** — sets can be materialised as real HyperFile objects
  (an object with one pointer tuple per member, paper §2), so they are
  shareable and queryable like any other object;
* **variable bindings** — values shipped by ``(type, key, ->var)``
  filters land in :attr:`Session.bindings` under ``var``;
* **distributed sets** — when the cluster runs in ``result_mode="count"``
  a query's result stays partitioned at the sites; using it as the source
  of the next query seeds remotely with no ids crossing the wire.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Union

from ..core.ast import Query
from ..core.objects import make_set_object, set_members
from ..core.oid import Oid
from ..core.parser import parse_query
from ..errors import HyperFileError
from ..net.messages import QueryId


class Session:
    """One application's connection to a cluster.

    Works with :class:`~repro.cluster.SimCluster`; the threaded cluster
    can be driven directly for tests that need real concurrency.
    """

    def __init__(self, cluster, home_site: Optional[str] = None) -> None:
        self.cluster = cluster
        self.home_site = home_site if home_site is not None else cluster.sites[0]
        #: name -> explicit member oids (local sets)
        self._sets: Dict[str, List[Oid]] = {}
        #: name -> qid whose partitions ARE the set (distributed sets)
        self._distributed: Dict[str, QueryId] = {}
        #: →var bindings accumulated by queries
        self.bindings: Dict[str, List[Any]] = {}
        #: response time of the most recent query (virtual seconds)
        self.last_response_time: Optional[float] = None
        self.last_outcome = None

    # -- set management --------------------------------------------------

    def define_set(self, name: str, members: Iterable[Oid]) -> None:
        """Bind ``name`` to an explicit collection of objects."""
        self._sets[name] = list(members)
        self._distributed.pop(name, None)

    def set_members(self, name: str) -> List[Oid]:
        """The member oids of a (non-distributed) named set."""
        if name in self._distributed:
            raise HyperFileError(
                f"set {name!r} is distributed; its members live at the sites "
                "(use it as a query source, or count_set())"
            )
        try:
            return list(self._sets[name])
        except KeyError:
            raise HyperFileError(f"unknown set {name!r}") from None

    def has_set(self, name: str) -> bool:
        return name in self._sets or name in self._distributed

    def is_distributed(self, name: str) -> bool:
        return name in self._distributed

    def count_set(self, name: str) -> int:
        """Size of a named set (summing partition counts if distributed)."""
        if name in self._distributed:
            outcome = self.cluster.outcome(self._distributed[name])
            counts = outcome.partition_counts or {}
            return sum(counts.values())
        return len(self.set_members(name))

    def materialize_set(self, name: str, key: str = "Member") -> Oid:
        """Store the set as a real HyperFile object at the home site."""
        members = self.set_members(name)
        store = self.cluster.store(self.home_site)
        obj = store.create([])
        store.replace(make_set_object(obj.oid, members, key=key))
        return obj.oid

    def load_set_object(self, name: str, oid: Oid, key: str = "Member") -> None:
        """Bind ``name`` to the members of a stored set object."""
        store = self.cluster.store(self.cluster.node(self.home_site).locate(oid))
        self._sets[name] = set_members(store.get(oid), key=key)
        self._distributed.pop(name, None)

    # -- queries -------------------------------------------------------------

    def query(self, query: Union[str, Query]) -> List[Oid]:
        """Run a query; returns the result oids and binds the result set.

        The query's source must be a set this session knows.  ``→``
        retrievals are appended to :attr:`bindings`.  With a distributed
        source, the follow-up protocol is used (ids stay at the sites).
        """
        if isinstance(query, str):
            query = parse_query(query)
        source = query.source
        if source in self._distributed:
            outcome = self.cluster.run_followup(
                query, self._distributed[source], originator=self.home_site
            )
        elif source in self._sets:
            outcome = self.cluster.run_query(
                query, self._sets[source], originator=self.home_site
            )
        else:
            raise HyperFileError(f"query source set {source!r} is not defined")

        self.last_response_time = outcome.response_time
        self.last_outcome = outcome
        for target, values in outcome.result.retrieved.items():
            self.bindings.setdefault(target, []).extend(values)

        result_oids = outcome.result.oids.as_list()
        if outcome.partition_counts:
            # Distributed-set mode: the ids stayed at the sites.
            self._distributed[query.result] = outcome.qid
            self._sets.pop(query.result, None)
        else:
            self._sets[query.result] = result_oids
            self._distributed.pop(query.result, None)
        return result_oids

    def combine(self, result_name: str, operation: str, *set_names: str) -> List[Oid]:
        """Set algebra over named sets: union / intersection / difference.

        Binds the combined set to ``result_name`` and returns its members
        (see :mod:`repro.client.sets`)."""
        from .sets import combine_sets

        return combine_sets(self, result_name, operation, *set_names)

    def retrieve(self, var: str) -> List[Any]:
        """All values bound to ``->var`` so far."""
        return list(self.bindings.get(var, ()))

    def clear_bindings(self) -> None:
        self.bindings.clear()
