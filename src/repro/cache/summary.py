"""Per-site reachability summaries.

A :class:`SiteSummary` is what one site can tell the rest of the cluster
about its holdings in a few hundred bytes, Bloofi-style:

* ``holdings`` — a Bloom filter over the keys of every object stored
  here *plus* every key this site holds a forwarding record for (the
  birth site stays the final arbiter of location, so its summary must
  cover migrated-away objects);
* ``reach`` — per pointer key, a Bloom filter over the keys of local
  objects with *at least one* outgoing pointer of that key, built from
  :mod:`repro.storage.reachability`.  The engine's leaf-drop rule (an
  object reached by a closure must still pass the iterator body) means
  an object absent from this filter can never produce results, spawns
  or emissions for the canonical closure shape — so work for it need
  not be sent at all;
* ``forward_count`` — how many forwarding records exist.  Suppression
  rules only fire against a summary with ``forward_count == 0``: once a
  site forwards objects elsewhere, "not in my store" stops meaning
  "nonexistent".
* ``alloc_high`` — the site's oid-allocation high-water mark (exclusive)
  at build time.  A summary can only testify about ids the site had
  minted when it was built: ids at or above the mark belong to objects
  the site may have created *since*, so they are never suppressed.  For
  ids *below* the mark, "not in holdings" is monotone — sequence numbers
  are never reused, and an object that leaves its birth site without a
  forwarding record is destroyed for good — which is what lets the
  nonexistence rule fire without any epoch re-confirmation.

Summaries carry the store epoch they were built at and are only trusted
while that epoch is the latest one observed from the site (envelopes
piggyback the sender's current epoch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from ..naming.directory import ForwardingTable
from ..storage.memstore import MemStore
from ..storage.reachability import build_reachability
from .bloom import BloomFilter, oid_token
from .config import CacheConfig


@dataclass(frozen=True)
class SiteSummary:
    """One site's holdings/reachability advertisement at a given epoch."""

    site: str
    epoch: int
    forward_count: int
    holdings: BloomFilter
    reach: Mapping[str, BloomFilter] = field(default_factory=dict)
    alloc_high: int = 0

    def wire_size(self) -> int:
        total = len(self.site) + 14 + self.holdings.wire_size()
        for key, bloom in self.reach.items():
            total += len(key) + 1 + bloom.wire_size()
        return total


def build_summary(
    site: str,
    epoch: int,
    store: MemStore,
    forwarding: ForwardingTable,
    pointer_keys: Iterable[str],
    config: CacheConfig,
) -> SiteSummary:
    """Snapshot this site's holdings and per-key reachability.

    ``pointer_keys`` is the set of pointer keys seen in closure-shaped
    queries so far — the only keys whose reach filters anyone will ever
    consult.
    """
    holdings = BloomFilter(config.bloom_bits, config.bloom_hashes)
    for obj in store.objects():
        holdings.add(oid_token(obj.oid.key()))
    forwarded = tuple(forwarding.forwarded_keys())
    for key in forwarded:
        holdings.add(oid_token(key))
    # Ids this site had minted when the snapshot was taken; stored or
    # forwarded objects born here can only push the mark up (an object
    # ``put`` here with a foreign-minted id of this site's birth space).
    alloc_high = store.alloc_high
    for key in forwarded:
        if key[0] == site and key[1] >= alloc_high:
            alloc_high = key[1] + 1
    reach: Dict[str, BloomFilter] = {}
    for pointer_key in sorted(set(pointer_keys)):
        index = build_reachability([store], pointer_key)
        bloom = BloomFilter(config.bloom_bits, config.bloom_hashes)
        for oid in store.oids():
            if index.has_outgoing(oid):
                bloom.add(oid_token(oid.key()))
        reach[pointer_key] = bloom
    return SiteSummary(
        site=site,
        epoch=epoch,
        forward_count=len(forwarded),
        holdings=holdings,
        reach=reach,
        alloc_high=alloc_high,
    )
