"""Configuration for the caching subsystem.

Mirrors :class:`repro.net.batching.BatchConfig`: a frozen dataclass the
cluster constructors thread down to every :class:`~repro.server.node.
ServerNode`.  Passing ``None`` instead of a config (the default
everywhere) leaves every cache code path unreachable — behaviour, message
streams and virtual timings stay bit-identical to the uncached build.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Tuning knobs for the per-site caches.

    Parameters
    ----------
    fragments:
        Enable the per-site query-fragment result cache (memoised
        processing steps, consulted before local processing).
    query_cache:
        Enable the originator-side whole-query result cache (a repeated
        query with an unchanged dependency footprint is answered without
        touching the network).
    summaries:
        Enable reachability summaries: build per-site Bloom filters,
        piggyback them on result messages, and use received summaries to
        suppress remote work that provably cannot contribute.
    max_entries / max_bytes:
        LRU bounds on the fragment cache.
    bloom_bits / bloom_hashes:
        Size (must be a multiple of 8) and hash count of every Bloom
        filter in a site summary.
    """

    fragments: bool = True
    query_cache: bool = True
    summaries: bool = True
    max_entries: int = 4096
    max_bytes: int = 4 * 1024 * 1024
    bloom_bits: int = 4096
    bloom_hashes: int = 4

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if self.max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if self.bloom_bits < 8 or self.bloom_bits % 8:
            raise ValueError("bloom_bits must be a positive multiple of 8")
        if self.bloom_hashes < 1:
            raise ValueError("bloom_hashes must be >= 1")

    @property
    def enabled(self) -> bool:
        """True when any cache feature is switched on."""
        return self.fragments or self.query_cache or self.summaries
