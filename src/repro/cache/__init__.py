"""Cross-query caching & Bloom-summary pruning (ROADMAP: caching/scaling).

The paper's mark tables only dedup work *within* one query; repeated or
overlapping filtering queries re-traverse the same remote subgraphs and
re-pay the message cost every time.  This package adds three layers on
top of the §3 algorithm, all strictly optional (``caching=None`` keeps
every transport bit-identical to the uncached reproduction):

* a per-site **fragment cache** (:mod:`repro.cache.fragments`) memoising
  single processing steps keyed by (program-suffix hash, oid, iteration
  state);
* **remote reachability summaries** (:mod:`repro.cache.summary`) — per
  site Bloom filters piggybacked on result messages and used by senders
  to suppress remote work that provably cannot contribute;
* **epoch-based invalidation** — every :class:`~repro.storage.memstore.
  MemStore` mutation bumps a site epoch carried in envelopes, so stale
  entries and summaries are dropped rather than served.

Import discipline: nothing in this package imports from :mod:`repro.net`
(the codec imports *us*), so the dependency graph stays acyclic.

See ``docs/CACHING.md`` for the invalidation rules and the Bloom
false-positive argument (a false positive costs one redundant message;
it can never lose an answer).
"""

from .bloom import BloomFilter, oid_token
from .config import CacheConfig
from .fragments import FragmentCache, FragmentEntry, program_suffix_hash
from .nodecache import NodeCache
from .summary import SiteSummary, build_summary

__all__ = [
    "BloomFilter",
    "CacheConfig",
    "FragmentCache",
    "FragmentEntry",
    "NodeCache",
    "SiteSummary",
    "build_summary",
    "oid_token",
    "program_suffix_hash",
]
