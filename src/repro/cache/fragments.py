"""Per-site query-fragment result cache.

One engine *step* — pushing a single object through the filters from its
start position until it dies, spawns, or reaches the end — is a pure
function of ``(program suffix, start offset, iteration state, object
contents)``.  The fragment cache memoises that function per site: a
repeated or overlapping query that admits the same work item replays the
recorded marks/spawns/emissions instead of re-fetching and re-filtering
the object.

Keys are *suffix-canonical*: :func:`suffix_info` computes the smallest
window of the program an item starting at position ``start`` can ever
see (loop markers can jump backwards, so the window is the fixpoint of
"extend left to the earliest reachable loop start") and hashes the
window's operations with indices rebased to it.  Two queries whose
programs share a suffix therefore share cache entries, which is why
entries store *relative* positions — the engine rebases them on replay.

Entries carry the store epoch they were computed at; a lookup under any
other epoch drops the entry instead of serving it (the object may have
been replaced or removed since).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Dict, Optional, Tuple

from ..core.oid import Oid
from ..core.program import DerefOp, LoopOp, Program, RetrieveOp, SelectOp
from ..engine.items import IterCounts

try:  # OrderedDict-based LRU; collections is always available.
    from collections import OrderedDict
except ImportError:  # pragma: no cover
    raise

#: (oid, relative start, relative iteration counts) for a spawned item.
RelSpawn = Tuple[Oid, int, IterCounts]


def suffix_info(program: Program, start: int) -> Tuple[str, int]:
    """Hash of the program suffix an item starting at ``start`` can see.

    Returns ``(digest, window_lo)`` where ``window_lo`` is the 1-based
    index of the first operation in the window; cached payloads are
    stored relative to it, so replaying under a different program with
    the same suffix rebases by ``window_lo - 1``.
    """
    lo = min(start, program.size) if program.size else 1
    while True:
        new_lo = lo
        for op in program.ops[lo - 1 :]:
            if isinstance(op, LoopOp) and op.start < new_lo:
                new_lo = op.start
        if new_lo == lo:
            break
        lo = new_lo
    base = lo - 1
    described = tuple(_describe(op, base) for op in program.ops[base:])
    digest = blake2b(
        (repr(described) + f"|{start - base}").encode(), digest_size=16
    ).hexdigest()
    return digest, lo


def program_suffix_hash(program: Program, start: int = 1) -> str:
    """Suffix hash alone (the whole-query cache keys off ``start=1``)."""
    return suffix_info(program, start)[0]


def _describe(op: object, base: int) -> Tuple[Any, ...]:
    """Stable, window-relative description of one flattened operation."""
    if isinstance(op, SelectOp):
        return ("S", op.index - base, str(op.type_pattern), str(op.key_pattern), str(op.data_pattern))
    if isinstance(op, RetrieveOp):
        return ("R", op.index - base, str(op.type_pattern), str(op.key_pattern), op.target)
    if isinstance(op, DerefOp):
        return ("D", op.index - base, op.var, op.keep_source)
    if isinstance(op, LoopOp):
        return ("L", op.index - base, op.start - base, op.count)
    raise TypeError(f"unknown op {type(op).__name__}")  # pragma: no cover


@dataclass(frozen=True)
class FragmentEntry:
    """The recorded outcome of one step, in window-relative form.

    ``marks`` are the filter positions the step marked (one per filter
    application, in order); ``spawned`` the work items it produced;
    ``emissions`` the ``(target set, value)`` pairs it retrieved;
    ``passed`` whether the source object survived to the end of the
    program (i.e. entered the result set); ``missing`` whether the fetch
    raised :class:`~repro.errors.ObjectNotFound`.
    """

    missing: bool
    passed: bool
    marks: Tuple[int, ...]
    spawned: Tuple[RelSpawn, ...]
    emissions: Tuple[Tuple[str, Any], ...]
    epoch: int
    nbytes: int = field(init=False, compare=False, default=0)

    def __post_init__(self) -> None:
        # Rough accounting for the byte budget; exactness is not needed,
        # only monotonicity in entry size.
        size = 96 + 8 * len(self.marks) + 112 * len(self.spawned)
        size += sum(64 + len(repr(v)) for _, v in self.emissions)
        object.__setattr__(self, "nbytes", size)


class FragmentCache:
    """LRU fragment store with entry-count and byte budgets.

    ``stats`` (a :class:`~repro.server.stats.NodeStats`, or anything with
    ``cache_hits``/``cache_misses``/``cache_evictions`` counters) is
    optional so the cache is unit-testable in isolation.
    """

    def __init__(self, max_entries: int, max_bytes: int, stats: Optional[Any] = None) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = stats
        self._entries: "OrderedDict[tuple, FragmentEntry]" = OrderedDict()
        self._bytes = 0

    def lookup(self, key: tuple, epoch: int) -> Optional[FragmentEntry]:
        """Return a fresh entry for ``key`` or ``None``.

        An entry recorded at a different store epoch is *dropped*, never
        served — mutation invalidation is this one comparison.
        """
        entry = self._entries.get(key)
        if entry is None:
            if self.stats is not None:
                self.stats.cache_misses += 1
            return None
        if entry.epoch != epoch:
            del self._entries[key]
            self._bytes -= entry.nbytes
            if self.stats is not None:
                self.stats.cache_misses += 1
            return None
        self._entries.move_to_end(key)
        if self.stats is not None:
            self.stats.cache_hits += 1
        return entry

    def store(self, key: tuple, entry: FragmentEntry) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._entries[key] = entry
        self._bytes += entry.nbytes
        while self._entries and (
            len(self._entries) > self.max_entries or self._bytes > self.max_bytes
        ):
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            if self.stats is not None:
                self.stats.cache_evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)
