"""Per-node cache state: fragments, received summaries, query results.

One :class:`NodeCache` lives on each :class:`~repro.server.node.
ServerNode` when caching is enabled.  It owns

* the :class:`~repro.cache.fragments.FragmentCache` the engine consults
  per step;
* the freshest :class:`~repro.cache.summary.SiteSummary` received from
  every peer, plus the latest *epoch* observed from each peer (envelopes
  piggyback the sender's store epoch, so a mutation at site B is
  observed no later than B's next message);
* the originator-side whole-query result cache, keyed by (program
  suffix hash, initial work items) and guarded by a dependency
  footprint: the cached answer is served only while the local store
  epoch and every contributing site's last-observed epoch still match
  the epochs recorded when the answer was computed.

Suppression (the Bloom pruning) lives in :meth:`NodeCache.
should_suppress`; both rules require the destination to be the item's
*birth site* with no forwarding records, so "not in the summary" is
definitive.  They differ in how they survive silent mutations (a peer
that changed its store but has sent us nothing since):

* rule A is *monotone* — guarded by the summary's allocation high-water
  mark, "didn't exist then" implies "doesn't exist now" — so it needs no
  freshness proof beyond the epoch-matched summary itself;
* rule B is not (``replace`` can grow a leaf new pointers), so it
  additionally requires the destination's epoch to have been *confirmed
  by an envelope received during the current query*.  That keeps it
  exact whenever mutations do not race the query itself (racing
  mutations are nondeterministic even uncached).

* **Rule A (nonexistence)** — the oid is not in the destination's
  holdings filter: the object does not exist anywhere, the message
  could only produce an ``objects_missing`` bump at the far end.
* **Rule B (leaf)** — for the canonical closure shape only: the oid is
  not in the destination's reach filter for the followed pointer key,
  so even if held the object has no outgoing pointers of that key and
  dies at the iterator body's selection (the engine's leaf-drop rule) —
  it can never mark past its start positions, spawn, emit, or enter the
  result set.

Suppression happens *before* the termination protocol splits credit, so
a suppressed send is indistinguishable from a mark-table skip and the
weighted-credit accounting stays exact.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, Mapping, Optional, Set, Tuple

from ..core.oid import Oid
from ..engine.items import WorkItem
from ..naming.directory import ForwardingTable
from ..storage.memstore import MemStore
from .bloom import oid_token
from .config import CacheConfig
from .fragments import FragmentCache, program_suffix_hash
from .summary import SiteSummary, build_summary

#: Whole-query caches are small: answers are cheap to recompute locally
#: compared to fragments, and each entry pins full oid tuples.
QUERY_CACHE_CAP = 256


@dataclass(frozen=True)
class QueryHit:
    """A cached whole-query answer plus its dependency footprint."""

    oids: Tuple[Oid, ...]
    retrieved: Tuple[Tuple[str, Any], ...]
    self_epoch: int
    deps: Mapping[str, int]


class NodeCache:
    """All cache state for one site (see module docstring)."""

    def __init__(self, site: str, config: CacheConfig, stats: Any) -> None:
        self.site = site
        self.config = config
        self.stats = stats
        self.fragments: Optional[FragmentCache] = (
            FragmentCache(config.max_entries, config.max_bytes, stats)
            if config.fragments
            else None
        )
        self._summaries: Dict[str, SiteSummary] = {}
        self._known_epochs: Dict[str, int] = {}
        self._pointer_keys: Set[str] = set()
        self._own_summary: Optional[SiteSummary] = None
        self._own_summary_keys: frozenset = frozenset()
        # Per destination: (epoch, pointer-key set) of the last summary
        # shipped there, so unchanged summaries are not resent.
        self._summary_sent: Dict[str, Tuple[int, frozenset]] = {}
        self._query_cache: "OrderedDict[tuple, QueryHit]" = OrderedDict()
        # Per in-flight query: site -> epoch relied upon (None = the
        # footprint is poisoned and the answer must not be cached).
        self._query_deps: Dict[Hashable, Dict[str, Optional[int]]] = {}
        # Per in-flight query: site -> epoch witnessed by an envelope
        # received *during that query* (the freshness proof suppression
        # requires; see module docstring).
        self._confirmed: Dict[Hashable, Dict[str, int]] = {}

    # -- epochs and summaries -------------------------------------------

    def observe_epoch(self, site: str, epoch: Optional[int]) -> None:
        """Record the latest epoch seen from ``site`` (via an envelope).

        A newer epoch invalidates any summary held for the site: stale
        summaries are dropped, never consulted.
        """
        if epoch is None or site == self.site:
            return
        prev = self._known_epochs.get(site)
        if prev is None or epoch > prev:
            self._known_epochs[site] = epoch
            summary = self._summaries.get(site)
            if summary is not None and summary.epoch < epoch:
                del self._summaries[site]

    def known_epoch(self, site: str) -> Optional[int]:
        return self._known_epochs.get(site)

    def confirm_epoch(self, qid: Hashable, site: str, epoch: Optional[int]) -> None:
        """Witness ``site``'s epoch from an envelope handled for ``qid``.

        Nothing mutates mid-query in a quiescent system, so an epoch
        seen during the query vouches for the site's summary for the
        rest of it.  (A racing mutation merely re-opens the window the
        uncached system has anyway.)
        """
        if epoch is None or site == self.site:
            return
        self._confirmed.setdefault(qid, {})[site] = epoch

    def record_summary(self, summary: SiteSummary) -> None:
        """Ingest a summary piggybacked on a result message."""
        self.observe_epoch(summary.site, summary.epoch)
        if self._known_epochs.get(summary.site) == summary.epoch:
            self._summaries[summary.site] = summary
        self.stats.summaries_received += 1

    def summary_for(self, site: str) -> Optional[SiteSummary]:
        """The summary held for ``site``, or None if absent/stale."""
        summary = self._summaries.get(site)
        if summary is None or self._known_epochs.get(site) != summary.epoch:
            return None
        return summary

    def note_pointer_key(self, pointer_key: str) -> None:
        """A closure-shaped query over ``pointer_key`` touched this site;
        future summaries must advertise reach for it."""
        self._pointer_keys.add(pointer_key)

    def summary_to_attach(
        self, dst: str, store: MemStore, forwarding: ForwardingTable
    ) -> Optional[SiteSummary]:
        """Summary to piggyback on a result message to ``dst``.

        Rebuilds lazily when the store epoch or the pointer-key set
        changed, and returns ``None`` when ``dst`` already has the
        current summary (no point paying the bytes twice).
        """
        if not self.config.summaries:
            return None
        keys = frozenset(self._pointer_keys)
        epoch = store.epoch
        if (
            self._own_summary is None
            or self._own_summary.epoch != epoch
            or self._own_summary_keys != keys
        ):
            self._own_summary = build_summary(
                self.site, epoch, store, forwarding, keys, self.config
            )
            self._own_summary_keys = keys
        if self._summary_sent.get(dst) == (epoch, keys):
            return None
        self._summary_sent[dst] = (epoch, keys)
        self.stats.summaries_sent += 1
        return self._own_summary

    # -- suppression -----------------------------------------------------

    def should_suppress(
        self,
        qid: Hashable,
        dst: str,
        item: WorkItem,
        pointer_key: Optional[str],
    ) -> bool:
        """True when sending ``item`` to ``dst`` provably cannot change
        the query's answer (see module docstring for the two rules)."""
        if not self.config.summaries:
            return False
        summary = self.summary_for(dst)
        if summary is None or summary.forward_count != 0:
            return False
        if item.oid.birth_site != dst:
            # Only the birth site is the final arbiter of existence; a
            # presumed-site miss would be forwarded, not dropped.
            return False
        token = oid_token(item.oid.key())
        suppress = False
        if (
            item.oid.key()[1] < summary.alloc_high
            and not summary.holdings.might_contain(token)
        ):
            # Rule A: nonexistent everywhere.  Sound at any summary age
            # without re-confirmation — the id was minted before the
            # snapshot (below the allocation mark), it wasn't held or
            # forwarded then, ids are never reused, and leaving the birth
            # site without a forwarding record means destroyed for good.
            suppress = True
        elif (
            pointer_key is not None
            and item.start in (1, 3)
            and self._confirmed.get(qid, {}).get(dst) == summary.epoch
        ):
            # Rule B (leaf pruning) is *not* monotone — a replace() can
            # grow a leaf new pointers — so it additionally needs a
            # same-query envelope witnessing that the summary's epoch is
            # still the destination's current one.  Silent mutations stay
            # safe: nothing mutates mid-query in a quiescent system, and
            # a mutation racing the query merely re-opens a window the
            # uncached system has anyway.
            reach = summary.reach.get(pointer_key)
            if reach is not None and not reach.might_contain(token):
                suppress = True
        if suppress:
            self._note_dep(qid, dst, summary.epoch)
        return suppress

    # -- whole-query result cache ---------------------------------------

    def query_key(self, program: Any, items: Iterable[WorkItem]) -> tuple:
        """Cache key for a whole query: program suffix + ordered seeds.

        Seed *order* matters — the result set is an ordered dedup, so
        reordered seeds may produce a differently-ordered answer.
        """
        return (
            program_suffix_hash(program, 1),
            tuple((item.oid.key(), item.start, item.iters) for item in items),
        )

    def begin_query(self, qid: Hashable) -> None:
        self._query_deps[qid] = {}

    def note_result_dep(self, qid: Hashable, site: str, epoch: Optional[int]) -> None:
        """Record that ``qid``'s answer depends on ``site`` at ``epoch``.

        A missing epoch, or two different epochs observed from the same
        site during one query, poisons the footprint — the answer is
        still correct but can't be validated later, so it is not cached.
        """
        deps = self._query_deps.get(qid)
        if deps is None:
            return
        if epoch is None:
            deps[site] = None
        elif site in deps and deps[site] != epoch:
            deps[site] = None
        elif deps.get(site, epoch) == epoch:
            deps[site] = epoch

    def _note_dep(self, qid: Hashable, site: str, epoch: int) -> None:
        self.note_result_dep(qid, site, epoch)

    def lookup_query(self, key: tuple, self_epoch: int) -> Optional[QueryHit]:
        """A cached answer for ``key``, or None.

        Valid only while the local epoch and every dependency's
        last-observed epoch still match; anything stale is dropped.
        """
        if not self.config.query_cache:
            return None
        hit = self._query_cache.get(key)
        if hit is None:
            return None
        fresh = hit.self_epoch == self_epoch and all(
            self._known_epochs.get(site) == epoch for site, epoch in hit.deps.items()
        )
        if not fresh:
            del self._query_cache[key]
            return None
        self._query_cache.move_to_end(key)
        self.stats.query_cache_hits += 1
        return hit

    def store_query(
        self,
        qid: Hashable,
        key: tuple,
        self_epoch: int,
        oids: Tuple[Oid, ...],
        retrieved: Tuple[Tuple[str, Any], ...],
    ) -> None:
        """Cache a completed query's answer unless its footprint is
        poisoned (a dependency epoch was missing or ambiguous)."""
        deps = self._query_deps.pop(qid, {})
        self._confirmed.pop(qid, None)
        if not self.config.query_cache:
            return
        if any(epoch is None for epoch in deps.values()):
            return
        self._query_cache[key] = QueryHit(
            oids=oids,
            retrieved=retrieved,
            self_epoch=self_epoch,
            deps=dict(deps),
        )
        self._query_cache.move_to_end(key)
        while len(self._query_cache) > QUERY_CACHE_CAP:
            self._query_cache.popitem(last=False)

    def drop_query(self, qid: Hashable) -> None:
        """Forget an in-flight query's footprint (timeout, purge)."""
        self._query_deps.pop(qid, None)
        self._confirmed.pop(qid, None)
