"""Deterministic Bloom filters for site summaries.

Membership summaries in the style of Bloofi (PAPERS.md): a site
advertises "the set of object keys I could possibly contribute for" in a
few hundred bytes.  The only permitted error is a *false positive* — the
filter may claim membership for a key that was never added, which costs
the sender one redundant message.  ``might_contain`` returning ``False``
is definitive, which is what makes suppression safe.

Hashing uses :func:`hashlib.blake2b` rather than Python's ``hash`` so
filters are stable across processes and interpreter runs (they travel
over the socket transport and land in recorded benchmarks).
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Tuple


def oid_token(key: Tuple[str, int]) -> str:
    """Canonical string form of an :meth:`~repro.core.oid.Oid.key` for
    Bloom hashing — hint-insensitive, identical at every site."""
    return f"{key[0]}:{key[1]}"


class BloomFilter:
    """A fixed-size Bloom filter over string tokens.

    The bit array is a single Python int, which keeps adds/tests cheap
    and serialisation trivial (``to_bytes``/``from_bytes``).
    """

    __slots__ = ("bits", "hashes", "_value", "count")

    def __init__(self, bits: int, hashes: int, value: int = 0, count: int = 0) -> None:
        if bits < 8 or bits % 8:
            raise ValueError("bits must be a positive multiple of 8")
        if hashes < 1:
            raise ValueError("hashes must be >= 1")
        self.bits = bits
        self.hashes = hashes
        self._value = value
        self.count = count  # tokens added; diagnostic only

    def _positions(self, token: str):
        for i in range(self.hashes):
            digest = blake2b(f"{i}|{token}".encode(), digest_size=8).digest()
            yield int.from_bytes(digest, "big") % self.bits

    def add(self, token: str) -> None:
        for pos in self._positions(token):
            self._value |= 1 << pos
        self.count += 1

    def might_contain(self, token: str) -> bool:
        """True when ``token`` *may* have been added; ``False`` is definitive."""
        return all(self._value >> pos & 1 for pos in self._positions(token))

    def wire_size(self) -> int:
        """Encoded size in bytes (the bit array; header fields are noise)."""
        return self.bits // 8

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(self.bits // 8, "big")

    @classmethod
    def from_bytes(cls, data: bytes, hashes: int, count: int = 0) -> "BloomFilter":
        return cls(len(data) * 8, hashes, int.from_bytes(data, "big"), count)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BloomFilter)
            and self.bits == other.bits
            and self.hashes == other.hashes
            and self._value == other._value
        )

    def __repr__(self) -> str:
        return f"BloomFilter(bits={self.bits}, hashes={self.hashes}, count={self.count})"
