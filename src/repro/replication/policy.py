"""Replica placement: who holds the k copies of an object.

Placement is a pure function of (object id, site list, k) so that every
component — the manager installing copies, tests predicting them, the
schedule explorer choosing safe crash sets — computes the same answer
without coordination.  The distribution-constraints view (Geck et al.,
"The Chase for Distributed Data") is that parallel-correct routing needs
exactly this property: the policy *is* the constraint, shared by data
placement and query routing.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Protocol, Sequence, Tuple

from ..core.oid import Oid


class PlacementPolicy(Protocol):
    """Maps an object to its placement-ordered holder list."""

    def place(self, oid: Oid, sites: Sequence[str], k: int) -> Tuple[str, ...]: ...


@dataclass(frozen=True)
class RingPlacement:
    """Primary-anchored rendezvous placement.

    The primary is the object's current holder (its birth/storage site
    keeps authority, matching the paper's naming scheme); the ``k-1``
    backups are chosen by rendezvous (highest-random-weight) hashing
    over the remaining sites.  Rendezvous placement is *stable* under
    membership change: each (site, object) pair hashes independently,
    so removing a site only re-places the objects that listed it, and
    adding a site steals only the expected ``(k-1)/n`` fraction of
    backups — unlike the earlier modulo ring, where one departure
    shifted the ring start for almost every object.
    """

    def place(self, oid: Oid, sites: Sequence[str], k: int) -> Tuple[str, ...]:
        ordered = list(sites)
        if not ordered:
            raise ValueError("placement needs at least one site")
        k = min(k, len(ordered))
        primary = oid.birth_site if oid.birth_site in ordered else ordered[0]
        others = [s for s in ordered if s != primary]
        token = f"{oid.birth_site}:{oid.key()[1]}"
        ranked = sorted(others, key=lambda s: (zlib.crc32(f"{s}|{token}".encode()), s))
        return (primary, *ranked[: k - 1])


@dataclass(frozen=True)
class ReplicationConfig:
    """How many copies to keep, and where.

    ``k=1`` (or a missing config) is the replica-free build: no
    directory entries are created and every code path stays
    bit-identical to the paper's single-holder algorithm.
    """

    k: int = 2
    policy: PlacementPolicy = field(default_factory=RingPlacement)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"replication factor must be >= 1, got {self.k}")

    @property
    def enabled(self) -> bool:
        return self.k > 1
