"""k-way object replication with read-anycast routing (docs/REPLICATION.md).

The paper's distributed algorithm assumes every remote pointer resolves
at exactly one live site.  This package relaxes that: a
:class:`~repro.replication.policy.ReplicationConfig` asks for ``k``
copies of every object, a placement policy spreads them over the
cluster, and a :class:`~repro.replication.manager.ReplicationManager`
keeps the copies write-through consistent (mutations fan out to every
holder, bumping a per-object version counter in the shared
:class:`~repro.naming.directory.ReplicaDirectory`).

Dereference routing then becomes *anycast*: any live holder may serve a
:class:`~repro.net.messages.DerefRequest`, and when the preferred holder
is down (availability oracle) or a work message bounces off it
(:class:`~repro.net.messages.Undeliverable` / reliable-channel give-up),
the sender re-routes to the next live replica, re-splitting termination
credit for the new send so the weighted detector stays exact.
"""

from .policy import PlacementPolicy, ReplicationConfig, RingPlacement
from .manager import ReplicationManager

__all__ = [
    "PlacementPolicy",
    "ReplicationConfig",
    "ReplicationManager",
    "RingPlacement",
]
