"""Write-through replica maintenance.

The manager owns the data-plane half of replication: installing the k
copies the placement policy asks for, fanning every mutation out to all
holders (bumping the per-object version counter), and keeping the
paper's naming invariants intact when a replicated object migrates.

Writes are *synchronous* write-through, matching the repo's treatment of
migration: data management is an administrative operation outside the
query cost model, so a mutation is applied at every holder before it
returns.  What stays interesting — and what the schedule explorer
stresses — is the read path: queries race crashes, bounces and failover
against this synchronously-maintained copy set.

Every fan-out also notifies registered epoch listeners (the clusters
wire these to each node's cache) so summary/answer caches learn about
the mutated holders' new store epochs immediately instead of waiting for
the next envelope from them; a stale replica can then never satisfy a
version-gated suppression or serve a cached answer (docs/REPLICATION.md).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.objects import HFObject
from ..core.oid import Oid
from ..errors import ObjectNotFound
from ..naming.directory import ForwardingTable, ReplicaDirectory
from ..storage.memstore import MemStore
from .policy import ReplicationConfig

#: Notified as (site, new_store_epoch) after a write lands at a holder.
EpochListener = Callable[[str, int], None]


class ReplicationManager:
    """Installs and maintains k-way replicated objects across stores."""

    def __init__(
        self,
        config: ReplicationConfig,
        stores: Dict[str, MemStore],
        forwarding: Dict[str, ForwardingTable],
        directory: Optional[ReplicaDirectory] = None,
    ) -> None:
        self.config = config
        self.stores = stores
        self.forwarding = forwarding
        self.directory = directory if directory is not None else ReplicaDirectory()
        self._listeners: List[EpochListener] = []
        self.copies_installed = 0
        self.writes_fanned_out = 0
        #: Optional membership hook: a callable returning the sites that
        #: may take *new* placements.  ``None`` (the default, and every
        #: membership-free deployment) places over all stores — the
        #: pre-membership behaviour, bit for bit.
        self.active_sites: Optional[Callable[[], List[str]]] = None

    # -- wiring ----------------------------------------------------------

    def add_epoch_listener(self, listener: EpochListener) -> None:
        """Register a cache-invalidation hook fired after every fan-out."""
        self._listeners.append(listener)

    def _announce(self, site: str) -> None:
        epoch = self.stores[site].epoch
        for listener in self._listeners:
            listener(site, epoch)

    def _placement_sites(self) -> List[str]:
        """Sites eligible for new placements (all stores, or the
        membership hook's active set when one is wired)."""
        if self.active_sites is not None:
            return list(self.active_sites())
        return list(self.stores)

    # -- placement -------------------------------------------------------

    def holder_of(self, oid: Oid) -> Optional[str]:
        """The site that currently stores ``oid``'s primary copy."""
        sites = self.directory.sites_of(oid)
        if sites:
            return sites[0]
        for site, store in self.stores.items():
            if store.contains(oid):
                return site
        return None

    def replicate(self, oid: Oid) -> tuple:
        """Install ``oid``'s replica set per the placement policy.

        Returns the placement-ordered holder list.  Idempotent: copies
        already in place are kept, the version counter is preserved.
        With ``k=1`` nothing is recorded — the directory stays empty and
        behaviour is the replica-free build's.
        """
        if not self.config.enabled:
            return ()
        primary = self.holder_of(oid)
        if primary is None:
            raise ObjectNotFound(oid)
        obj = self.stores[primary].get(oid)
        placement = self.config.policy.place(oid, self._placement_sites(), self.config.k)
        if primary not in placement:
            # The object lives off its computed placement (e.g. it was
            # migrated); keep the actual holder as primary.
            placement = (primary, *[s for s in placement if s != primary][: self.config.k - 1])
        elif placement[0] != primary:
            placement = (primary, *[s for s in placement if s != primary])
        for site in placement:
            if site != primary and not self.stores[site].contains(oid):
                self.stores[site].put(obj)
                self.copies_installed += 1
                self._announce(site)
        self.directory.record(oid, placement)
        return placement

    def replicate_all(self) -> int:
        """Replicate every object in every store; returns objects placed."""
        if not self.config.enabled:
            return 0
        placed = 0
        for store in list(self.stores.values()):
            for oid in store.oids():
                if self.directory.sites_of(oid) and self.directory.sites_of(oid)[0] != store.site:
                    continue  # a backup copy; its primary already placed it
                self.replicate(oid)
                placed += 1
        return placed

    # -- writes ----------------------------------------------------------

    def apply(self, oid: Oid, mutate: Callable[[HFObject], HFObject]) -> HFObject:
        """Write-through mutation: apply ``mutate`` at every holder.

        Bumps the object's version counter so version-keyed caches treat
        every pre-write copy (and every summary describing one) as
        stale.  Unreplicated objects mutate in place at their single
        holder, exactly as a direct ``store.replace`` would.
        """
        sites = self.directory.sites_of(oid)
        if not sites:
            holder = self.holder_of(oid)
            if holder is None:
                raise ObjectNotFound(oid)
            store = self.stores[holder]
            updated = mutate(store.get(oid))
            store.replace(updated)
            self._announce(holder)
            return updated
        updated = mutate(self.stores[sites[0]].get(oid))
        for site in sites:
            self.stores[site].replace(updated)
            self.writes_fanned_out += 1
            self._announce(site)
        self.directory.bump_version(oid)
        return updated

    def put(self, obj: HFObject) -> tuple:
        """Store a new object then place its replicas (workload loading)."""
        eligible = self._placement_sites()
        primary = obj.oid.birth_site if obj.oid.birth_site in eligible else eligible[0]
        self.stores[primary].put(obj)
        self._announce(primary)
        return self.replicate(obj.oid)

    # -- migration -------------------------------------------------------

    def migrate(self, oid: Oid, to_site: str) -> Oid:
        """Move ``oid``'s primary residency to ``to_site``.

        Replication-aware version of :func:`repro.naming.names.migrate_object`:
        the new primary leads the holder list, backups are retained (or
        installed) to keep k copies, sites leaving the holder set record
        forwarding entries, and the birth site's arbiter entry tracks the
        new primary.  Counts as a write: the version counter bumps, so
        caches keyed on it refresh.
        """
        if to_site not in self.stores:
            raise KeyError(f"unknown destination site {to_site!r}")
        old_sites = self.directory.sites_of(oid)
        if not old_sites:
            from ..naming.names import migrate_object

            moved = migrate_object(oid, self.stores, self.forwarding, to_site)
            self.replicate(moved)
            if self.directory.sites_of(moved):
                self.directory.bump_version(moved)
            return moved
        obj = self.stores[old_sites[0]].get(oid)
        eligible = set(self._placement_sites())
        keep = [s for s in old_sites if s != to_site and s in eligible]
        new_sites = (to_site, *keep[: self.config.k - 1])
        for site in new_sites:
            if not self.stores[site].contains(oid):
                self.stores[site].put(obj)
                self.copies_installed += 1
                self._announce(site)
        for site in old_sites:
            if site not in new_sites:
                self.stores[site].remove(oid)
                self.forwarding[site].record(oid, to_site)
                self._announce(site)
        for site in new_sites:
            self.forwarding[site].drop(oid)
        if oid.birth_site in self.forwarding and oid.birth_site not in new_sites:
            self.forwarding[oid.birth_site].record(oid, to_site)
        self.directory.record(oid, new_sites)
        self.directory.bump_version(oid)
        return oid.with_hint(to_site)
