"""Deterministic schedule exploration over the simulation kernel.

The discrete-event simulator normally fires events in (time, seq) order —
one interleaving per workload.  Distributed-algorithm bugs (termination
credit leaks, replica failover races, suppression against a stale copy)
live in the *other* interleavings: orders of message arrival and node
steps that are causally possible but never produced by the default clock.

This module drives the kernel's :meth:`~repro.sim.kernel.Simulator.set_policy`
hook to replay thousands of those orders deterministically:

* :func:`run_schedule` — one workload execution under a seeded
  random-walk (or replayed-prefix) event order, with crash/recovery
  injection keyed on *scheduler decision counts* (so a crash lands at
  the same logical point on every replay of a seed, independent of
  virtual timestamps).  Returns a :class:`ScheduleRun` carrying the
  result set, the termination-credit deficit, and a signature hash of
  the exact choice sequence (distinct signatures = distinct
  interleavings).
* :func:`explore_random` — a seed sweep of random walks.
* :func:`explore_dfs` — systematic DFS over choice prefixes: every run
  follows a recorded prefix, branches once, then falls back to the
  earliest-event order; the frontier of unexplored branches is the
  classic stateless-search worklist (CHESS/dBug style, scaled to a
  bounded budget).

Every choice a policy makes is *causally sound*: a queued event's cause
has already executed, so firing it before an earlier-stamped event is a
physically possible network/scheduler behaviour.  The clock advances to
``max(now, event.time)`` — timestamps bend, causality does not.

The invariants the test suite asserts over every schedule:

1. **Result equivalence** — with every reachable object keeping at least
   one live replica, the result set equals the healthy replica-free
   cluster's, on every interleaving.
2. **Credit conservation** — the weighted detector ends with
   ``credit_deficit == 0`` on completion; a run that loses work to an
   unrecoverable crash must end in a *deliberate*
   :class:`~repro.errors.TerminationLost` whose deficit the credit audit
   (:func:`repro.profiling.credit_audit`) explains span by span.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..api import credit_deficit
from ..cluster import SimCluster
from ..core.oid import Oid
from ..errors import HyperFileError
from ..net.messages import BatchedQuery, DerefRequest, SeedFromSaved

#: Builds a fresh cluster + the query's initial oids for one run.  Must
#: be deterministic: every call returns an identically-loaded deployment
#: (schedule signatures are only comparable across identical workloads).
Setup = Callable[[], Tuple[SimCluster, List[Oid]]]


@dataclass(frozen=True)
class CrashPoint:
    """Crash ``site`` after the scheduler's Nth decision.

    ``recover_at_decision`` (absolute decision count) brings it back;
    ``None`` leaves it down for the rest of the run.  Decision counts —
    not virtual times — key the injection so a crash lands at the same
    logical point however the policy bent the timestamps.
    """

    site: str
    at_decision: int
    recover_at_decision: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_decision < 0:
            raise ValueError("at_decision must be >= 0")
        if self.recover_at_decision is not None and self.recover_at_decision <= self.at_decision:
            raise ValueError("recovery must come after the crash")


@dataclass(frozen=True)
class JoinPoint:
    """Admit ``site`` (new or rejoining) after the Nth scheduler decision."""

    site: str
    at_decision: int

    def __post_init__(self) -> None:
        if self.at_decision < 0:
            raise ValueError("at_decision must be >= 0")


@dataclass(frozen=True)
class LeavePoint:
    """Start a graceful leave of ``site`` after the Nth decision."""

    site: str
    at_decision: int

    def __post_init__(self) -> None:
        if self.at_decision < 0:
            raise ValueError("at_decision must be >= 0")


@dataclass(frozen=True)
class CrashPermanentPoint:
    """Permanently crash ``site`` at the first *credit-safe* decision at
    or after ``at_decision``.

    A permanent crash destroys the site's store, so unlike
    :class:`CrashPoint` it can only preserve the sweep invariants
    (result equivalence, zero deficit) when it fires at a moment where
    no termination credit and no sole surviving copy would die with the
    machine.  The explorer defers firing until
    :func:`permanent_crash_is_safe` holds; if the query completes first
    the crash fires post-completion, so the k-restoration invariant is
    still exercised on every run.
    """

    site: str
    at_decision: int

    def __post_init__(self) -> None:
        if self.at_decision < 0:
            raise ValueError("at_decision must be >= 0")


#: Any membership event the explorer can inject mid-schedule.
MembershipPoint = object  # JoinPoint | LeavePoint | CrashPermanentPoint


def _membership_tag(point) -> str:
    if isinstance(point, JoinPoint):
        return f"&J:{point.site}@{point.at_decision};"
    if isinstance(point, LeavePoint):
        return f"&L:{point.site}@{point.at_decision};"
    return f"&X:{point.site}@{point.at_decision};"


@dataclass
class ScheduleRun:
    """Outcome of one explored interleaving."""

    seed: Optional[int]
    #: SHA-1 over the (choice, width) sequence + crash points: two runs
    #: with the same signature executed the same interleaving.
    signature: str
    decisions: int
    crashes: Tuple[CrashPoint, ...]
    #: "completed" or "termination_lost".
    status: str
    #: Sorted result-set keys (empty when the run did not complete).
    oid_keys: Tuple[Tuple[str, int], ...] = ()
    partial: bool = False
    #: Weighted-detector deficit at end of run (0 on a clean completion).
    deficit: Optional[Fraction] = None
    #: len(live) at each decision (DFS uses this to branch).
    widths: List[int] = field(default_factory=list)
    #: The query id, for post-run audits against ``trace``.
    qid: Optional[object] = None
    #: Trace events captured when ``run_schedule`` got a tracer factory
    #: (feed to :func:`repro.profiling.credit_audit`).
    trace: Optional[List] = None
    #: Cluster-wide :class:`~repro.server.stats.NodeStats` at end of run
    #: (``replica_failovers`` etc. tell the tests which paths ran).
    stats: Optional[object] = None
    #: Membership events this run injected (in firing order).
    membership: Tuple = ()
    #: After the run quiesced: does every surviving directory entry have
    #: min(k, active) live up-to-date holders?  ``None`` when the cluster
    #: ran without a membership plane; lost entries (no live holder at
    #: all) are excluded here and counted in ``lost_objects``.
    k_restored: Optional[bool] = None
    #: Directory entries left with zero live holders (crash-lost data).
    lost_objects: int = 0


class _PolicyDriver:
    """The kernel policy for one run: replay a prefix, then walk.

    ``prefix`` entries are branch indices taken verbatim (clamped to the
    live width); past the prefix, a seeded RNG picks uniformly — or,
    with ``rng=None``, index 0, which is exactly the kernel's default
    earliest-(time, seq) order.
    """

    def __init__(self, prefix: Sequence[int] = (), rng: Optional[random.Random] = None) -> None:
        self.prefix = list(prefix)
        self.rng = rng
        self.choices: List[Tuple[int, int]] = []
        self.widths: List[int] = []

    @property
    def decisions(self) -> int:
        return len(self.choices)

    def __call__(self, live: List) -> int:
        width = len(live)
        depth = len(self.choices)
        if depth < len(self.prefix):
            index = min(self.prefix[depth], width - 1)
        elif self.rng is not None:
            index = self.rng.randrange(width)
        else:
            index = 0
        self.widths.append(width)
        self.choices.append((index, width))
        return index

    def signature(self, crashes: Tuple[CrashPoint, ...], membership: Tuple = ()) -> str:
        h = hashlib.sha1()
        for index, width in self.choices:
            h.update(f"{index}/{width};".encode())
        for c in crashes:
            h.update(f"!{c.site}@{c.at_decision}+{c.recover_at_decision};".encode())
        for point in membership:
            h.update(_membership_tag(point).encode())
        return h.hexdigest()


def crash_is_safe(cluster: SimCluster, down: Iterable[str], originator: str) -> bool:
    """Would crashing ``down`` (simultaneously) still leave every object
    with a live holder, and the originator alive?

    The schedule tests use this to build crash sets under which result
    equivalence *must* hold; an unsafe set is allowed to lose branches
    (partial results / deliberate TerminationLost) instead.
    """
    down = set(down)
    if originator in down:
        return False
    directory = cluster.replication.directory if cluster.replication is not None else None
    for site, store in cluster.stores.items():
        for oid in store.oids():
            holders: Tuple[str, ...] = directory.sites_of(oid) if directory is not None else ()
            if not holders:
                holders = (site,)
            if all(h in down for h in holders):
                return False
    return True


def permanent_crash_is_safe(cluster: SimCluster, site: str, originator: str) -> bool:
    """Can ``site`` be permanently crashed *right now* without losing
    termination credit or the last copy of any object?

    The machine dies with whatever it holds, so the crash is credit-safe
    only when: the site is not the originator, none of its query
    contexts is mid-work, its send batcher is drained, everything in its
    inbox is a *work* payload (those are bounced back to their senders,
    recovering their credit — results and control frames would die), and
    every object in its store has another live up holder.
    """
    if site == originator:
        return False
    node = cluster.nodes.get(site)
    if node is None or not cluster.is_up(site):
        return False
    if any(ctx.busy for ctx in node.contexts.values()):
        return False
    if node._batcher is not None and node._batcher.has_pending:
        return False
    for env in node.inbox:
        if not isinstance(env.payload, (DerefRequest, BatchedQuery, SeedFromSaved)):
            return False
    directory = cluster.replication.directory if cluster.replication is not None else None
    membership = cluster.membership
    for oid in cluster.stores[site].oids():
        holders = directory.sites_of(oid) if directory is not None else ()
        survivors = [
            h
            for h in holders
            if h != site
            and cluster.is_up(h)
            and (membership is None or membership.status_of(h) == "up")
            and cluster.stores[h].contains(oid)
        ]
        if not survivors:
            return False
    return True


def _replication_health(cluster: SimCluster) -> Tuple[Optional[bool], int]:
    """(k_restored, lost_objects) for a quiesced membership cluster."""
    if cluster.membership is None or cluster.replication is None:
        return None, 0
    directory = cluster.replication.directory
    active = list(cluster.membership.view.active)
    want = min(cluster.replication.config.k, len(active))
    restored = True
    lost = 0
    for key, entry in directory.entries():
        oid = Oid(key[0], key[1])
        live = [
            s
            for s in entry.sites
            if cluster.membership.status_of(s) == "up" and cluster.stores[s].contains(oid)
        ]
        if not live:
            lost += 1
        elif len(live) < want:
            restored = False
    return restored, lost


def _fire_membership(cluster: SimCluster, point) -> None:
    if isinstance(point, JoinPoint):
        cluster.join_site(point.site)
    elif isinstance(point, LeavePoint):
        cluster.leave_site(point.site)
    else:
        cluster.fail_site(point.site)


def run_schedule(
    setup: Setup,
    query,
    *,
    seed: Optional[int] = None,
    prefix: Sequence[int] = (),
    crashes: Sequence[CrashPoint] = (),
    membership: Sequence = (),
    originator: Optional[str] = None,
    max_decisions: int = 200_000,
    tracer_factory: Optional[Callable[[], object]] = None,
) -> ScheduleRun:
    """Execute one query under one explored interleaving.

    ``seed`` drives the random walk past ``prefix`` (``None`` = the
    kernel's default order).  ``crashes`` fire on decision counts; a
    crash whose site holds in-flight messages exercises the bounce →
    failover path, a recovery exercises re-routing back.  The run ends
    at query completion or — when crash-lost credit makes termination
    impossible — at queue exhaustion, reported as ``"termination_lost"``
    with the exact deficit attached (never an exception: the explorer's
    callers decide which outcomes a schedule was allowed to produce).
    """
    cluster, initial = setup()
    driver = _PolicyDriver(prefix, random.Random(seed) if seed is not None else None)
    tracer = None
    if tracer_factory is not None:
        tracer = tracer_factory()
        cluster.attach_tracer(tracer)
    cluster.sim.set_policy(driver)
    crash_list = tuple(sorted(crashes, key=lambda c: c.at_decision))
    member_list = tuple(sorted(membership, key=lambda p: p.at_decision))
    pending_down = list(crash_list)
    pending_up = [c for c in crash_list if c.recover_at_decision is not None]
    pending_member = list(member_list)
    try:
        qid = cluster.submit(query, initial, originator=originator)
        status = "completed"
        while cluster.outcome(qid) is None:
            while pending_down and driver.decisions >= pending_down[0].at_decision:
                cluster.set_down(pending_down.pop(0).site)
            while pending_up and driver.decisions >= pending_up[0].recover_at_decision:
                cluster.set_up(pending_up.pop(0).site)
            if pending_member:
                still = []
                for point in pending_member:
                    if driver.decisions < point.at_decision:
                        still.append(point)
                    elif isinstance(point, CrashPermanentPoint) and not permanent_crash_is_safe(
                        cluster, point.site, qid.originator
                    ):
                        # Not credit-safe yet: retry at the next decision
                        # (falls through to post-completion otherwise).
                        still.append(point)
                    else:
                        _fire_membership(cluster, point)
                pending_member = still
            if driver.decisions > max_decisions:
                raise HyperFileError(
                    f"schedule exceeded {max_decisions} decisions (seed={seed})"
                )
            if not cluster.sim.step():
                if pending_up:
                    # The system quiesced (work frozen at a down site)
                    # before the recovery's decision count was reached;
                    # nothing else can happen, so the recovery point has
                    # logically arrived — bring the sites back and let
                    # the frozen work resume.
                    for crash in pending_up:
                        cluster.set_up(crash.site)
                    pending_up.clear()
                    continue
                status = "termination_lost"
                break
        # Membership points the query outran fire post-completion: the
        # rebalance/k-restoration invariants are still exercised even
        # when the schedule never reached a mid-query window.
        for point in pending_member:
            if isinstance(point, CrashPermanentPoint) and not permanent_crash_is_safe(
                cluster, point.site, qid.originator
            ):
                continue
            _fire_membership(cluster, point)
        if cluster.membership is not None and member_list:
            # Drain the rebalance traffic and deferred copy removals so
            # the health check sees the settled directory.  Skipped when
            # no membership points fired: an eventless membership cluster
            # must walk bit-identically to a membership-free one.
            while cluster.sim.step():
                pass
            cluster.finalize_membership()
        outcome = cluster.outcome(qid)
        deficit = credit_deficit(cluster.nodes, qid)
        k_restored, lost_objects = _replication_health(cluster)
        return ScheduleRun(
            seed=seed,
            signature=driver.signature(crash_list, member_list),
            decisions=driver.decisions,
            crashes=crash_list,
            status=status,
            oid_keys=tuple(sorted(o.key() for o in outcome.result.oids)) if outcome else (),
            partial=outcome.result.partial if outcome else False,
            deficit=deficit,
            widths=driver.widths,
            qid=qid,
            trace=list(tracer.events) if tracer is not None else None,
            stats=cluster.total_stats(),
            membership=member_list,
            k_restored=k_restored,
            lost_objects=lost_objects,
        )
    finally:
        cluster.sim.set_policy(None)
        cluster.close()


def explore_random(
    setup: Setup,
    query,
    *,
    seeds: Iterable[int],
    crashes_for_seed: Optional[Callable[[int], Sequence[CrashPoint]]] = None,
    membership_for_seed: Optional[Callable[[int], Sequence]] = None,
    originator: Optional[str] = None,
    tracer_factory: Optional[Callable[[], object]] = None,
) -> List[ScheduleRun]:
    """Random-walk sweep: one :func:`run_schedule` per seed.

    ``crashes_for_seed`` / ``membership_for_seed`` derive each run's
    fault and membership events from its seed (deterministic chaos —
    the same sweep replays bit-identically).
    """
    runs = []
    for seed in seeds:
        crashes = tuple(crashes_for_seed(seed)) if crashes_for_seed is not None else ()
        member = tuple(membership_for_seed(seed)) if membership_for_seed is not None else ()
        runs.append(
            run_schedule(
                setup, query, seed=seed, crashes=crashes, membership=member,
                originator=originator, tracer_factory=tracer_factory,
            )
        )
    return runs


def explore_dfs(
    setup: Setup,
    query,
    *,
    max_runs: int,
    branch_cap: int = 3,
    depth_limit: int = 10,
    crashes: Sequence[CrashPoint] = (),
    membership: Sequence = (),
    originator: Optional[str] = None,
    tracer_factory: Optional[Callable[[], object]] = None,
) -> List[ScheduleRun]:
    """Systematic DFS over schedule prefixes.

    Each run replays a recorded choice prefix, then follows the default
    earliest-event order; afterwards every decision inside the first
    ``depth_limit`` steps spawns up to ``branch_cap - 1`` sibling
    prefixes (branch 0 is the path already taken).  Bounded stateless
    model checking: ``max_runs`` caps the budget, the returned runs'
    distinct signatures measure actual coverage.
    """
    stack: List[Tuple[int, ...]] = [()]
    runs: List[ScheduleRun] = []
    while stack and len(runs) < max_runs:
        prefix = stack.pop()
        run = run_schedule(
            setup, query, prefix=prefix, crashes=crashes, membership=membership,
            originator=originator, tracer_factory=tracer_factory,
        )
        runs.append(run)
        # Past its prefix a prefix-only driver always takes branch 0, so
        # the path through decision d is prefix + zero padding; every
        # sibling branch at every post-prefix depth is a new frontier
        # entry (branch 0 is the path this run already took).
        for depth in range(len(prefix), min(depth_limit, len(run.widths))):
            pad = (0,) * (depth - len(prefix))
            for branch in range(1, min(run.widths[depth], branch_cap)):
                stack.append((*prefix, *pad, branch))
    return runs


def distinct_signatures(runs: Iterable[ScheduleRun]) -> int:
    """How many genuinely different interleavings a set of runs covered."""
    return len({run.signature for run in runs})


def summarize(runs: Sequence[ScheduleRun]) -> Dict[str, object]:
    """Aggregate view of a sweep (CLI + test reporting)."""
    completed = sum(1 for r in runs if r.status == "completed")
    return {
        "runs": len(runs),
        "distinct": distinct_signatures(runs),
        "completed": completed,
        "termination_lost": len(runs) - completed,
        "partial": sum(1 for r in runs if r.partial),
        "zero_deficit": sum(1 for r in runs if r.deficit == 0),
        "max_decisions": max((r.decisions for r in runs), default=0),
        "k_restored": sum(1 for r in runs if r.k_restored),
        "lost_objects": sum(r.lost_objects for r in runs),
    }
