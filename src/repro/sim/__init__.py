"""Discrete-event simulation kernel and the paper's cost model."""

from .costs import FREE_COSTS, PAPER_COSTS, CostModel
from .kernel import EventHandle, SchedulePolicy, Simulator

__all__ = [
    "CostModel",
    "EventHandle",
    "FREE_COSTS",
    "PAPER_COSTS",
    "SchedulePolicy",
    "Simulator",
]
