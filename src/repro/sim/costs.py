"""The cost model: the paper's measured constants as simulation parameters.

Paper §5 ("From our experiments we deduced a few basic times"):

* local processing of a single object ≈ **8 ms**;
* adding an object to the result set ≈ **20 ms** more;
* processing a remote pointer ≈ **50 ms** (constructing the message,
  system calls for sending and receiving, and transmission delay);
* each remote result message ≈ **50 ms**.

The defaults below reproduce those constants.  The 50 ms remote-pointer
cost is split into sender overhead (occupies the sender's CPU), wire
latency (occupies nobody), and receiver overhead (occupies the receiver's
CPU); the split does not matter on a serial path (it sums to 50 ms per
hop, which is what the paper measured) but matters under parallelism,
where only the CPU portions contend.

Result messages are costed as a fixed per-message overhead plus a
per-item integration cost at the originator; the paper's observation that
"sending results is expensive in our system" — low-selectivity queries
get *slower* when distributed — emerges from the per-item term.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual-time costs, in seconds."""

    #: Pushing one object through the filters (the paper's 8 ms).
    object_process_s: float = 0.008

    #: Adding one object to a site's result partition (the paper's 20 ms).
    result_insert_s: float = 0.020

    #: Popping a work item that the mark table suppresses (hash lookup).
    mark_check_s: float = 0.0005

    #: Sender-side cost of any remote message (construct + send syscalls).
    msg_send_s: float = 0.015

    #: Wire latency of any remote message.
    msg_latency_s: float = 0.020

    #: Receiver-side cost of ingesting a remote work (dereference) message.
    msg_recv_s: float = 0.015

    #: Sender-side marginal cost per *additional* work item coalesced into
    #: a batched frame (the first item pays the full ``msg_send_s`` header).
    #: Calibration: a batched frame amortises the 50 ms per-message cost —
    #: message construction and the send/recv system calls happen once —
    #: leaving only the copy of one more (oid, start, iter#) record.
    batch_item_send_s: float = 0.002

    #: Receiver-side marginal cost per additional item in a batched frame
    #: (unpack one more record and admit it to the working set).
    batch_item_recv_s: float = 0.003

    #: Fixed receiver-side cost of ingesting a remote result message.
    result_msg_fixed_s: float = 0.015

    #: Per-item cost of integrating remote result entries at the originator.
    result_item_s: float = 0.035

    #: Serving a memoised step (or whole query) from the fragment/query
    #: cache — a hash probe plus replaying recorded marks, far below the
    #: 8 ms of actually filtering the object.
    cache_hit_s: float = 0.0005

    #: Client <-> originating-server link cost per direction (0 keeps the
    #: paper's single-site 2.7 s figure exact; the client machine's costs
    #: were folded into their measured constants).
    client_link_s: float = 0.0

    #: Wire bandwidth for size-dependent transfer delay (10 Mbit/s — the
    #: paper's Ethernet).  Query messages (~80 B) cost microseconds; whole
    #: objects (kilobytes) cost milliseconds, which is the point of the
    #: send-the-query design.
    bandwidth_bytes_per_s: float = 1_250_000.0

    @property
    def remote_pointer_total_s(self) -> float:
        """End-to-end serial cost of one remote dereference hop (≈ 50 ms)."""
        return self.msg_send_s + self.msg_latency_s + self.msg_recv_s

    def scaled(self, factor: float) -> "CostModel":
        """A uniformly faster/slower machine (e.g. 'an optimized system
        would significantly decrease the times we present')."""
        return CostModel(
            object_process_s=self.object_process_s * factor,
            result_insert_s=self.result_insert_s * factor,
            mark_check_s=self.mark_check_s * factor,
            msg_send_s=self.msg_send_s * factor,
            msg_latency_s=self.msg_latency_s * factor,
            msg_recv_s=self.msg_recv_s * factor,
            batch_item_send_s=self.batch_item_send_s * factor,
            batch_item_recv_s=self.batch_item_recv_s * factor,
            result_msg_fixed_s=self.result_msg_fixed_s * factor,
            result_item_s=self.result_item_s * factor,
            cache_hit_s=self.cache_hit_s * factor,
            client_link_s=self.client_link_s * factor,
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s / factor,
        )

    def with_(self, **overrides: float) -> "CostModel":
        """Copy with selected fields replaced."""
        return replace(self, **overrides)


#: The calibration used throughout the benchmarks.
PAPER_COSTS = CostModel()

#: A zero-cost model: virtual time stays 0; useful for correctness tests
#: that only care about results, not response times.
FREE_COSTS = CostModel(
    object_process_s=0.0,
    result_insert_s=0.0,
    mark_check_s=0.0,
    msg_send_s=0.0,
    msg_latency_s=0.0,
    msg_recv_s=0.0,
    batch_item_send_s=0.0,
    batch_item_recv_s=0.0,
    result_msg_fixed_s=0.0,
    result_item_s=0.0,
    cache_hit_s=0.0,
    client_link_s=0.0,
    bandwidth_bytes_per_s=float("inf"),
)
