"""Discrete-event simulation kernel.

The paper's experiments ran on a network of IBM PC/RTs; we substitute a
deterministic discrete-event simulator (see DESIGN.md §2).  The kernel is
deliberately tiny: a virtual clock, a binary-heap event queue, and stable
FIFO tie-breaking so that runs are exactly reproducible — equal-time events
fire in schedule order.

Nothing in here knows about HyperFile; hosts and networks are built on top
in :mod:`repro.net.simnet`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

#: An event action is any zero-argument callable; it runs at its scheduled
#: virtual time and may schedule further events.
Action = Callable[[], None]


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    action: Action = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; lets the caller cancel."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._entry.cancelled = True

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled


#: A schedule policy picks which pending event fires next: it is called
#: with the queue's live entries presented in deterministic (time, seq)
#: order and returns the index to fire.  Any queued event is *causally*
#: enabled — whatever scheduled it has already executed — so every choice
#: is a physically possible interleaving; only the timestamps bend (the
#: clock never runs backwards, see :meth:`Simulator.step`).
SchedulePolicy = Callable[[List["_Entry"]], int]


class Simulator:
    """A virtual clock plus an ordered event queue."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[_Entry] = []
        self._seq = itertools.count()
        self.events_fired = 0
        self._policy: Optional[SchedulePolicy] = None

    def set_policy(self, policy: Optional[SchedulePolicy]) -> None:
        """Install (or clear) a schedule-exploration policy.

        ``None`` restores the default earliest-deadline order.  With a
        policy installed, :meth:`step` lets it choose among *all* pending
        events instead of always firing the earliest — the hook the
        schedule explorer (:mod:`repro.sim.explore`) drives to replay
        thousands of distinct interleavings of the same workload.
        """
        self._policy = policy

    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    def schedule(self, delay: float, action: Action) -> EventHandle:
        """Run ``action`` at ``now + delay`` virtual seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        entry = _Entry(self._now + delay, next(self._seq), action)
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    def schedule_at(self, time: float, action: Action) -> EventHandle:
        """Run ``action`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, action)

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty.

        Default order is earliest-(time, seq) first.  With a policy
        installed (:meth:`set_policy`) the policy chooses among all
        pending events; firing a later-stamped event early is causally
        sound (its cause already executed), and the clock advances to
        ``max(now, entry.time)`` so time still never runs backwards.
        """
        if self._policy is not None:
            return self._step_policy()
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self._now = entry.time
            self.events_fired += 1
            entry.action()
            return True
        return False

    def _step_policy(self) -> bool:
        live = sorted(
            (e for e in self._queue if not e.cancelled),
            key=lambda e: (e.time, e.seq),
        )
        if not live:
            self._queue.clear()
            return False
        if len(self._queue) > 64 and len(live) * 2 < len(self._queue):
            # Consumed entries are only marked, never popped; rebuild the
            # heap when they dominate so policy steps stay near-linear.
            self._queue = list(live)
            heapq.heapify(self._queue)
        assert self._policy is not None
        index = self._policy(live)
        if not 0 <= index < len(live):
            raise IndexError(
                f"schedule policy chose event {index} of {len(live)} pending"
            )
        entry = live[index]
        entry.cancelled = True  # consumed; lazily dropped from the heap
        self._now = max(self._now, entry.time)
        self.events_fired += 1
        entry.action()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Stops when the queue empties, when virtual time would pass
        ``until``, or after ``max_events`` (a runaway-simulation guard).
        Returns the final virtual time.
        """
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = until
                break
            if max_events is not None and fired >= max_events:
                break
            self.step()
            fired += 1
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def __repr__(self) -> str:
        return f"Simulator(now={self._now:.6f}, pending={self.pending})"
