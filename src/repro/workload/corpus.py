"""A realistic document corpus: power-law hypertext beyond §5's synthetic.

The paper's evaluation uses a parameterised synthetic database built for
controlled locality experiments.  Real hypertext looks different:
keyword popularity is Zipfian, citation in-degree is heavy-tailed
(preferential attachment), and documents cluster by topic — which is
what drives locality in a deployment that places documents near the
community that writes them.

:func:`build_corpus` generates such a corpus:

* ``n_docs`` documents, each with a title, a publication year, a body
  payload, and 1–``max_keywords`` keywords drawn Zipf-style from a
  vocabulary;
* citations by preferential attachment within a recency window, so early
  documents become hubs;
* one topic per document; topics map onto sites (community placement),
  and a tunable fraction of citations deliberately crosses topics —
  giving the same local/remote dial as §5's random pointers, but grown
  from a plausible process rather than imposed per edge;
* every document carries a ``Cites`` self-pointer when it cites nothing
  (the leaf rule — see :mod:`repro.workload.graphs`).

The corpus materialises into any cluster whose site count divides the
topic count, mirroring :func:`repro.workload.generator.materialize`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.oid import Oid
from ..core.tuples import keyword_tuple, number_tuple, pointer_tuple, string_tuple, text_tuple
from ..storage.memstore import MemStore

#: A compact topic vocabulary; keywords are per-topic plus shared terms.
DEFAULT_TOPICS = ("systems", "theory", "graphics", "databases", "networks", "languages")

SHARED_VOCABULARY = (
    "survey", "performance", "distributed", "novel", "framework",
    "evaluation", "optimal", "parallel", "storage", "hypertext",
)


@dataclass(frozen=True)
class CorpusSpec:
    """Parameters of the generated corpus."""

    n_docs: int = 300
    topics: Sequence[str] = DEFAULT_TOPICS
    max_keywords: int = 4
    zipf_s: float = 1.3              #: keyword skew (higher = more skewed)
    cites_mean: int = 3              #: mean citations per document
    cross_topic_fraction: float = 0.2  #: citations that leave the topic
    recency_window: int = 120        #: preferential attachment looks back this far
    payload_bytes: int = 1024
    seed: int = 2024


@dataclass
class Corpus:
    """The materialised corpus."""

    spec: CorpusSpec
    sites: List[str]
    oids: List[Oid]
    topic_of: List[int]
    keywords_of: List[List[str]]
    cites: List[List[int]]

    def docs_with_keyword(self, keyword: str) -> List[int]:
        """Ground truth for selectivity checks."""
        return [i for i, kws in enumerate(self.keywords_of) if keyword in kws]

    def hubs(self, top: int = 5) -> List[int]:
        """Most-cited documents (preferential-attachment winners)."""
        indegree: Dict[int, int] = {}
        for targets in self.cites:
            for t in targets:
                indegree[t] = indegree.get(t, 0) + 1
        ranked = sorted(indegree, key=lambda i: (-indegree[i], i))
        return ranked[:top]

    def measured_locality(self) -> float:
        """Fraction of citations staying on the citing document's site."""
        n_sites = len(self.sites)
        local = total = 0
        for i, targets in enumerate(self.cites):
            for t in targets:
                total += 1
                if self.topic_of[i] % n_sites == self.topic_of[t] % n_sites:
                    local += 1
        return local / total if total else 1.0


def _zipf_choice(rng: random.Random, items: Sequence[str], s: float) -> str:
    """Draw from ``items`` with P(rank r) proportional to 1/r^s."""
    weights = [1.0 / ((rank + 1) ** s) for rank in range(len(items))]
    return rng.choices(items, weights=weights, k=1)[0]


def build_corpus(spec: CorpusSpec, stores: Sequence[MemStore]) -> Corpus:
    """Generate the corpus into ``stores`` (topics map onto sites)."""
    n_sites = len(stores)
    if n_sites < 1:
        raise ValueError("need at least one store")
    if len(spec.topics) % n_sites != 0:
        raise ValueError(
            f"site count {n_sites} must divide the topic count {len(spec.topics)} "
            "so communities map cleanly onto sites"
        )
    rng = random.Random(spec.seed)
    n = spec.n_docs
    topic_of = [rng.randrange(len(spec.topics)) for _ in range(n)]

    # Per-topic vocabularies: topic-specific terms first (most popular),
    # shared terms after.
    vocab: Dict[int, List[str]] = {
        t: [f"{name}-{k}" for k in range(6)] + list(SHARED_VOCABULARY)
        for t, name in enumerate(spec.topics)
    }

    keywords_of: List[List[str]] = []
    for i in range(n):
        count = rng.randint(1, spec.max_keywords)
        chosen: List[str] = []
        while len(chosen) < count:
            kw = _zipf_choice(rng, vocab[topic_of[i]], spec.zipf_s)
            if kw not in chosen:
                chosen.append(kw)
        keywords_of.append(chosen)

    # Citations: preferential attachment within a recency window, with a
    # cross-topic fraction.
    cites: List[List[int]] = []
    indegree = [1] * n  # +1 smoothing so new docs can be cited at all
    for i in range(n):
        targets: List[int] = []
        if i > 0:
            window_start = max(0, i - spec.recency_window)
            k = min(i, max(0, int(rng.gauss(spec.cites_mean, 1.0))))
            same_topic = [j for j in range(window_start, i) if topic_of[j] == topic_of[i]]
            other_topic = [j for j in range(window_start, i) if topic_of[j] != topic_of[i]]
            for _ in range(k):
                cross = rng.random() < spec.cross_topic_fraction
                pool = other_topic if cross and other_topic else same_topic or other_topic
                if not pool:
                    break
                weights = [indegree[j] for j in pool]
                j = rng.choices(pool, weights=weights, k=1)[0]
                if j not in targets:
                    targets.append(j)
                    indegree[j] += 1
        cites.append(targets)

    # Materialise: two passes (ids first, then tuples with pointers).
    site_names = [store.site for store in stores]
    oids: List[Oid] = []
    for i in range(n):
        store = stores[topic_of[i] % n_sites]
        oids.append(store.create([]).oid)
    payload = "lorem " * (spec.payload_bytes // 6)
    from ..core.objects import HFObject

    for i in range(n):
        tuples = [
            string_tuple("Title", f"{spec.topics[topic_of[i]].title()} Paper #{i}"),
            number_tuple("Year", 1970 + (i * 50) // max(n, 1)),
            text_tuple("Body", payload),
        ]
        for kw in keywords_of[i]:
            tuples.append(keyword_tuple(kw))
        targets = cites[i] if cites[i] else [i]  # leaf rule: self-cite
        for j in targets:
            tuples.append(pointer_tuple("Cites", oids[j]))
        store = stores[topic_of[i] % n_sites]
        store.replace(HFObject(oids[i], tuples, size_hint=128 + spec.payload_bytes))

    return Corpus(
        spec=spec,
        sites=site_names,
        oids=oids,
        topic_of=topic_of,
        keywords_of=keywords_of,
        cites=cites,
    )
