"""The synthetic database and query scripts of paper §5."""

from .generator import (
    CHAIN_KEY,
    COMMON_TYPE,
    COMMON_VALUE,
    RAND10_TYPE,
    RAND100_TYPE,
    RAND1000_TYPE,
    SEARCH_KEY_SPACES,
    TREE_KEY,
    UNIQUE_TYPE,
    MaterializedWorkload,
    WorkloadSpec,
    generate_into_cluster,
    materialize,
    pointer_key_for,
)
from .corpus import Corpus, CorpusSpec, build_corpus
from .graphs import AbstractGraph, build_graph
from .queries import (
    bounded_query,
    closure_query,
    query_script,
    traversal_only_query,
    unique_query,
)

__all__ = [
    "AbstractGraph",
    "CHAIN_KEY",
    "Corpus",
    "CorpusSpec",
    "build_corpus",
    "COMMON_TYPE",
    "COMMON_VALUE",
    "MaterializedWorkload",
    "RAND10_TYPE",
    "RAND100_TYPE",
    "RAND1000_TYPE",
    "SEARCH_KEY_SPACES",
    "TREE_KEY",
    "UNIQUE_TYPE",
    "WorkloadSpec",
    "bounded_query",
    "build_graph",
    "closure_query",
    "generate_into_cluster",
    "materialize",
    "pointer_key_for",
    "query_script",
    "traversal_only_query",
    "unique_query",
]
