"""Materialisation of the §5 synthetic database into HyperFile stores.

Every object in the paper's test database contains:

* **five search-key tuples** — one unique to the object, one found in all
  objects, and three drawn from spaces of 10, 100 and 1000 values
  ("changing the tuple and value searched for allowed us to vary the
  number of items found by a query");
* **one chain pointer** — a linked list of all items, always remote in
  multi-machine runs (maximum delay);
* **fourteen random pointers** — 7 locality classes × 2 pointers, with
  P(local) from .05 to .95 ("the query would branch out, yielding some
  parallelism");
* **tree pointers** — a spanning tree giving high parallelism at low
  message cost;
* a **body payload** — opaque text giving objects realistic bulk, so the
  file-server baseline (which must ship whole objects) pays the cost the
  paper's design avoids.

Search keys are expressed exactly as in the paper's example query
``(Rand10p, 5, ?)``: the tuple *type* names the key space and the tuple
*key* carries the value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.objects import HFObject
from ..core.oid import Oid
from ..core.tuples import HFTuple, pointer_tuple, text_tuple, tuple_of
from ..storage.memstore import MemStore
from .graphs import AbstractGraph, build_graph

#: Tuple types of the five search keys.
UNIQUE_TYPE = "Unique"
COMMON_TYPE = "Common"
RAND10_TYPE = "Rand10p"
RAND100_TYPE = "Rand100p"
RAND1000_TYPE = "Rand1000p"

SEARCH_KEY_SPACES: Dict[str, int] = {
    RAND10_TYPE: 10,
    RAND100_TYPE: 100,
    RAND1000_TYPE: 1000,
}

#: The value every object's Common tuple carries.
COMMON_VALUE = 0

CHAIN_KEY = "Chain"
TREE_KEY = "Tree"


def pointer_key_for(p_local: float) -> str:
    """Key naming a random-pointer locality class, e.g. 0.05 -> 'Rand05'."""
    return f"Rand{int(round(p_local * 100)):02d}"


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the synthetic database (defaults = the paper's)."""

    n_objects: int = 270
    groups: int = 9
    locality_classes: Tuple[float, ...] = (0.05, 0.20, 0.35, 0.50, 0.65, 0.80, 0.95)
    pointers_per_class: int = 2
    tree_arity: int = 2
    seed: int = 42
    payload_bytes: int = 2048

    def scaled(self, n_objects: int) -> "WorkloadSpec":
        """Same shape, different size (for the linearity experiment E6)."""
        return WorkloadSpec(
            n_objects=n_objects,
            groups=self.groups,
            locality_classes=self.locality_classes,
            pointers_per_class=self.pointers_per_class,
            tree_arity=self.tree_arity,
            seed=self.seed,
            payload_bytes=self.payload_bytes,
        )


@dataclass
class MaterializedWorkload:
    """The database, loaded into a set of stores.

    ``oids[i]`` is the HyperFile id of abstract object ``i``; ``root`` is
    object 0 (the query start point used throughout §5);
    ``key_values[t][i]`` is object ``i``'s value for search-key type
    ``t``.
    """

    spec: WorkloadSpec
    graph: AbstractGraph
    machines: int
    sites: List[str]
    oids: List[Oid]
    key_values: Dict[str, List[int]]

    @property
    def root(self) -> Oid:
        return self.oids[0]

    def site_of(self, index: int) -> str:
        return self.sites[self.graph.site_of(index, self.machines)]

    def indices_with_key(self, key_type: str, value: int) -> List[int]:
        """Ground truth: which objects carry (key_type, value)?"""
        if key_type == COMMON_TYPE:
            return list(range(self.spec.n_objects)) if value == COMMON_VALUE else []
        values = self.key_values[key_type]
        return [i for i, v in enumerate(values) if v == value]


def materialize(
    spec: WorkloadSpec,
    stores: Sequence[MemStore],
    graph: Optional[AbstractGraph] = None,
) -> MaterializedWorkload:
    """Build the database into ``stores`` (one per machine, in site order).

    The abstract graph may be passed in so that single-site, 3-site and
    9-site deployments share the *identical* pointer structure (paper §5);
    when omitted it is generated from the spec.
    """
    machines = len(stores)
    if machines < 1:
        raise ValueError("need at least one store")
    if graph is None:
        graph = build_graph(
            n=spec.n_objects,
            groups=spec.groups,
            locality_classes=spec.locality_classes,
            pointers_per_class=spec.pointers_per_class,
            tree_arity=spec.tree_arity,
            seed=spec.seed,
        )
    if machines > 1 and spec.groups % machines != 0:
        raise ValueError(
            f"machine count {machines} must divide the group count {spec.groups} "
            "so that group locality is preserved (the paper uses 1, 3 and 9)"
        )

    key_values = _draw_key_values(spec)
    payload = "x" * spec.payload_bytes

    # Pass 1: allocate ids in abstract-index order at each object's site.
    oids: List[Oid] = []
    for i in range(spec.n_objects):
        store = stores[graph.site_of(i, machines)]
        oids.append(store.create([]).oid)

    # Pass 2: fill in tuples now that every pointer target has an id.
    for i in range(spec.n_objects):
        tuples = _object_tuples(i, spec, graph, oids, key_values, payload)
        store = stores[graph.site_of(i, machines)]
        store.replace(HFObject(oids[i], tuples, size_hint=64 + spec.payload_bytes))

    return MaterializedWorkload(
        spec=spec,
        graph=graph,
        machines=machines,
        sites=[store.site for store in stores],
        oids=oids,
        key_values=key_values,
    )


def generate_into_cluster(cluster, spec: WorkloadSpec, graph: Optional[AbstractGraph] = None) -> MaterializedWorkload:
    """Materialise into every site of a :class:`~repro.cluster.SimCluster`."""
    stores = [cluster.store(site) for site in cluster.sites]
    return materialize(spec, stores, graph=graph)


def _draw_key_values(spec: WorkloadSpec) -> Dict[str, List[int]]:
    """Search-key values per object: uniform draws from each key space."""
    rng = random.Random(spec.seed + 1)
    values: Dict[str, List[int]] = {}
    for key_type, space in SEARCH_KEY_SPACES.items():
        values[key_type] = [rng.randint(1, space) for _ in range(spec.n_objects)]
    return values


def _object_tuples(
    i: int,
    spec: WorkloadSpec,
    graph: AbstractGraph,
    oids: List[Oid],
    key_values: Dict[str, List[int]],
    payload: str,
) -> List[HFTuple]:
    tuples: List[HFTuple] = [
        tuple_of(UNIQUE_TYPE, i, ""),
        tuple_of(COMMON_TYPE, COMMON_VALUE, ""),
        tuple_of(RAND10_TYPE, key_values[RAND10_TYPE][i], ""),
        tuple_of(RAND100_TYPE, key_values[RAND100_TYPE][i], ""),
        tuple_of(RAND1000_TYPE, key_values[RAND1000_TYPE][i], ""),
        pointer_tuple(CHAIN_KEY, oids[graph.chain_next[i]]),
    ]
    for child in graph.tree_children[i]:
        tuples.append(pointer_tuple(TREE_KEY, oids[child]))
    for p, per_object in graph.random_targets.items():
        key = pointer_key_for(p)
        for target in per_object[i]:
            tuples.append(pointer_tuple(key, oids[target]))
    tuples.append(text_tuple("Body", payload))
    return tuples
