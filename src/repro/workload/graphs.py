"""Abstract pointer-graph construction for the §5 synthetic database.

The paper stresses that "the pointers were constructed such that the
desired properties (likelihood of a pointer being remote, etc.) were the
same in both cases; i.e., the graph formed by the pointers in these
objects was identical regardless of the number of machines."

We achieve that by generating the graph over *canonical groups* rather
than sites: objects are partitioned into ``G`` groups (G = 9, the largest
machine count used), and a cluster of ``M`` machines maps group ``g`` to
site ``g mod M``.  A pointer is **local** when source and target share a
group, and **remote** when their groups differ *mod 3* — which guarantees
different sites under both the 3-way and the 9-way mapping (and, a
fortiori, the 9-way).  Local/remote character is therefore invariant
across all machine counts the paper uses (1, 3, 9), exactly as claimed.

Three pointer families are generated (paper §5):

* **chain** — a linked list of all items, consecutive items always in
  different groups ("these pointers were always to a remote machine"),
  closed into a cycle so every object has an outgoing chain pointer;
* **tree** — a spanning tree whose root has one pointer to a subtree root
  in every other group ("a single remote pointer to all other machines"),
  each of which roots a group-local k-ary tree; leaves carry a self
  pointer (see note below);
* **random-with-locality** — per locality class ``p``, every object gets
  two pointers, each local (same group) with probability ``p`` and
  otherwise remote (group differing mod 3).

Self-pointer note: the paper's iterator semantics (§3.1's ``E`` function)
drop an object that fails a filter *inside* the iterator body, so an
object with no outgoing pointer of the followed kind would never reach
the filters after the loop.  The paper's own experiments check a search
key on every object of the closure, so its data set cannot have had
pointerless objects on the traversal paths; we make that property explicit
by giving tree leaves a self-pointer.  Self-pointers are free: the mark
table suppresses them locally and they generate no messages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass
class AbstractGraph:
    """Pointer structure over object indices ``0..n-1``.

    ``chain_next[i]`` — the chain successor of object ``i``;
    ``tree_children[i]`` — tree pointers out of ``i`` (leaves: ``[i]``);
    ``random_targets[p][i]`` — the targets of ``i``'s two pointers in
    locality class ``p``.
    """

    n: int
    groups: int
    group_of: List[int]
    chain_next: List[int]
    tree_children: List[List[int]]
    random_targets: Dict[float, List[Tuple[int, ...]]] = field(default_factory=dict)

    def site_of(self, index: int, machines: int) -> int:
        """Site hosting object ``index`` in an ``machines``-way deployment."""
        return self.group_of[index] % machines

    def members_of_group(self, group: int) -> List[int]:
        return [i for i in range(self.n) if self.group_of[i] == group]

    def is_remote(self, src: int, dst: int, machines: int) -> bool:
        return self.site_of(src, machines) != self.site_of(dst, machines)

    def locality_fraction(self, key: float, machines: int) -> float:
        """Measured fraction of class-``key`` pointers that are local."""
        total = 0
        local = 0
        for i, targets in enumerate(self.random_targets[key]):
            for t in targets:
                total += 1
                if not self.is_remote(i, t, machines):
                    local += 1
        return local / total if total else 1.0


def build_graph(
    n: int = 270,
    groups: int = 9,
    locality_classes: Sequence[float] = (0.05, 0.20, 0.35, 0.50, 0.65, 0.80, 0.95),
    pointers_per_class: int = 2,
    tree_arity: int = 2,
    seed: int = 42,
) -> AbstractGraph:
    """Generate the paper's synthetic pointer graph.

    Objects are dealt round-robin into ``groups`` groups ("divided
    evenly"); all structure is then derived from the group partition so
    it survives any compatible machine mapping.
    """
    if groups % 3 != 0:
        raise ValueError("groups must be a multiple of 3 to support 1/3/9-way deployments")
    if n < groups:
        raise ValueError(f"need at least {groups} objects for {groups} groups")
    rng = random.Random(seed)
    group_of = [i % groups for i in range(n)]

    graph = AbstractGraph(
        n=n,
        groups=groups,
        group_of=group_of,
        chain_next=_build_chain(n, group_of),
        tree_children=_build_tree(n, groups, group_of, tree_arity),
    )
    by_residue = _indices_by_residue(n, group_of)
    by_group = [[] for _ in range(groups)]
    for i in range(n):
        by_group[group_of[i]].append(i)
    for p in locality_classes:
        graph.random_targets[p] = _build_random_class(
            n, group_of, by_group, by_residue, p, pointers_per_class, rng
        )
    return graph


def _build_chain(n: int, group_of: List[int]) -> List[int]:
    """Cyclic linked list in index order.

    Round-robin grouping makes consecutive indices fall in consecutive
    groups, so every hop crosses groups (and residues mod 3): chain
    pointers are always remote in any multi-machine deployment, giving
    the paper's maximum-delay structure.
    """
    chain = [(i + 1) % n for i in range(n)]
    for i in range(n):
        if group_of[i] == group_of[chain[i]]:  # pragma: no cover - structural guarantee
            raise AssertionError("chain hop stayed inside a group")
    return chain


def _build_tree(n: int, groups: int, group_of: List[int], arity: int) -> List[List[int]]:
    """Spanning tree: root -> per-group roots -> local k-ary subtrees.

    The global root is object 0 (group 0).  It points at the first object
    of every other group; within each group the members form a k-ary heap
    layout.  Leaves point at themselves (see module docstring).
    """
    children: List[List[int]] = [[] for _ in range(n)]
    by_group: List[List[int]] = [[] for _ in range(groups)]
    for i in range(n):
        by_group[group_of[i]].append(i)
    root = 0
    for g in range(groups):
        members = by_group[g]
        if not members:
            continue
        group_root = members[0]
        if group_root != root:
            children[root].append(group_root)
        for pos, node in enumerate(members):
            for c in range(1, arity + 1):
                child_pos = pos * arity + c
                if child_pos < len(members):
                    children[node].append(members[child_pos])
    for i in range(n):
        if not children[i]:
            children[i] = [i]  # leaf self-pointer
    return children


def _indices_by_residue(n: int, group_of: List[int]) -> List[List[int]]:
    by_residue: List[List[int]] = [[], [], []]
    for i in range(n):
        by_residue[group_of[i] % 3].append(i)
    return by_residue


def _build_random_class(
    n: int,
    group_of: List[int],
    by_group: List[List[int]],
    by_residue: List[List[int]],
    p_local: float,
    pointers: int,
    rng: random.Random,
) -> List[Tuple[int, ...]]:
    """Two (by default) pointers per object, local with probability p.

    Local  = same group  (same site under every mapping).
    Remote = group with a different residue mod 3 (different site under
    both the 3-way and 9-way mapping).
    """
    out: List[Tuple[int, ...]] = []
    for i in range(n):
        g = group_of[i]
        residue = g % 3
        targets = []
        for _ in range(pointers):
            if rng.random() < p_local:
                pool = by_group[g]
                t = rng.choice(pool)
                while t == i and len(pool) > 1:
                    t = rng.choice(pool)
            else:
                pool = by_residue[(residue + rng.choice((1, 2))) % 3]
                t = rng.choice(pool)
            targets.append(t)
        out.append(tuple(targets))
    return out
