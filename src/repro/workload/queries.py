"""Query builders for the §5 experiments.

The paper's test queries all have the same shape::

    Root [ (Pointer, "Tree", ?X) | ^^X ]* (Rand10p, 5, ?) -> T

— traverse the transitive closure of one pointer family starting at the
root, selecting objects carrying a given search key.  "For each test we
timed 100 queries which followed the same pointers and looked for the
same type of search key tuple, but randomly varied the key searched for
(so the 100 queries were comparable, but not identical)."
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.ast import Query
from ..core.builder import QueryBuilder
from .generator import (
    COMMON_TYPE,
    COMMON_VALUE,
    SEARCH_KEY_SPACES,
    UNIQUE_TYPE,
    WorkloadSpec,
)


def closure_query(pointer_key: str, search_type: str, search_value: object) -> Query:
    """``Root [ (Pointer, key, ?X) | ^^X ]* (search_type, value, ?) -> T``."""
    return (
        QueryBuilder("Root")
        .begin_loop()
        .select("Pointer", pointer_key, "?X")
        .deref_keep("X")
        .end_loop()  # '*' — transitive closure
        .select(search_type, search_value, "?")
        .into("T")
    )


def bounded_query(pointer_key: str, depth: int, search_type: str, search_value: object) -> Query:
    """Same traversal, but following pointers for only ``depth`` levels."""
    return (
        QueryBuilder("Root")
        .begin_loop()
        .select("Pointer", pointer_key, "?X")
        .deref_keep("X")
        .end_loop(count=depth)
        .select(search_type, search_value, "?")
        .into("T")
    )


def traversal_only_query(pointer_key: str) -> Query:
    """Closure traversal selecting everything it visits (``Common`` key).

    This is the paper's low-selectivity extreme: "If we instead select all
    of the items (using a key which is found in all of the objects)".
    """
    return closure_query(pointer_key, COMMON_TYPE, COMMON_VALUE)


def unique_query(pointer_key: str, object_index: int) -> Query:
    """Highest selectivity: find the single object with a given Unique key."""
    return closure_query(pointer_key, UNIQUE_TYPE, object_index)


def query_script(
    pointer_key: str,
    search_type: str,
    count: int = 100,
    seed: int = 7,
    spec: Optional[WorkloadSpec] = None,
) -> List[Query]:
    """The paper's experimental script: ``count`` comparable queries.

    All queries follow the same pointers and search the same key *type*;
    the key *value* is drawn uniformly from that type's space, so runs
    are comparable but not identical.
    """
    rng = random.Random(seed)
    queries: List[Query] = []
    for _ in range(count):
        if search_type == COMMON_TYPE:
            value: object = COMMON_VALUE
        elif search_type == UNIQUE_TYPE:
            n = spec.n_objects if spec is not None else 270
            value = rng.randrange(n)
        else:
            space = SEARCH_KEY_SPACES[search_type]
            value = rng.randint(1, space)
        queries.append(closure_query(pointer_key, search_type, value))
    return queries
