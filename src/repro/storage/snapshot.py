"""Store snapshots: persist a site's objects to disk and back.

The paper's deployment story includes archival servers ("old papers would
be placed on an archival server") — an archive needs durable storage.
This module serialises a whole :class:`~repro.storage.memstore.MemStore`
to a single binary file and restores it, using the same closed-type
encoding discipline as the wire codec (no pickle; only HyperFile's value
types decode).

Format: magic + version, the site name, the allocator position, then one
record per object (oid, size hint, tuple list).  Everything length-
prefixed; truncation and corruption raise
:class:`~repro.net.codec.CodecError` rather than mis-loading.
"""

from __future__ import annotations

import io
import os
from typing import BinaryIO, Union

from ..core.objects import HFObject
from ..core.oid import Oid
from ..core.tuples import HFTuple
from ..net.codec import CodecError, _Reader, _read_value, _Writer, _write_value
from .memstore import MemStore

MAGIC = b"HFSNAP"
VERSION = 1

PathOrFile = Union[str, os.PathLike, BinaryIO]


def save_store(store: MemStore, destination: PathOrFile) -> int:
    """Write every object of ``store`` to ``destination``.

    Returns the number of objects written.  The allocator position is
    preserved so a restored site keeps minting fresh ids.
    """
    w = _Writer()
    w.chunks.append(MAGIC)
    w.byte(VERSION)
    w.text(store.site)
    w.varint(store._allocator.peek())
    objects = list(store.objects())
    w.varint(len(objects))
    for obj in objects:
        _write_value(w, obj.oid)
        w.varint(obj.size_bytes)
        w.varint(len(obj.tuples))
        for t in obj.tuples:
            w.text(t.type)
            _write_value(w, t.key)
            _write_value(w, t.data)
    payload = w.getvalue()
    if hasattr(destination, "write"):
        destination.write(payload)  # type: ignore[union-attr]
    else:
        with open(destination, "wb") as handle:
            handle.write(payload)
    return len(objects)


def load_store(source: PathOrFile) -> MemStore:
    """Rebuild a :class:`MemStore` from a snapshot.

    Raises :class:`~repro.net.codec.CodecError` on malformed input.
    """
    if hasattr(source, "read"):
        payload = source.read()  # type: ignore[union-attr]
    else:
        with open(source, "rb") as handle:
            payload = handle.read()
    if not payload.startswith(MAGIC):
        raise CodecError("not a HyperFile snapshot (bad magic)")
    r = _Reader(payload)
    r.pos = len(MAGIC)
    version = r.byte()
    if version != VERSION:
        raise CodecError(f"unsupported snapshot version {version}")
    site = r.text()
    next_id = r.varint()
    count = r.varint()
    if count < 0 or count > 50_000_000:
        raise CodecError(f"implausible object count {count}")

    store = MemStore(site)
    for _ in range(count):
        oid = _read_value(r)
        if not isinstance(oid, Oid):
            raise CodecError("object record must start with an oid")
        size_hint = r.varint()
        n_tuples = r.varint()
        if n_tuples < 0 or n_tuples > 1_000_000:
            raise CodecError(f"implausible tuple count {n_tuples}")
        tuples = []
        for _ in range(n_tuples):
            type_name = r.text()
            key = _read_value(r)
            data = _read_value(r)
            tuples.append(HFTuple(type_name, key, data))
        store.put(HFObject(oid, tuples, size_hint=size_hint))
    if not r.done():
        raise CodecError("trailing bytes after snapshot")
    # Restore the allocator position (private by design: snapshots are a
    # storage-layer facility).
    store._allocator._next = next_id
    return store


def snapshot_round_trip_equal(a: MemStore, b: MemStore) -> bool:
    """Structural equality of two stores (test/verification helper)."""
    if a.site != b.site or len(a) != len(b):
        return False
    for obj in a.objects():
        if not b.contains(obj.oid):
            return False
        if b.get(obj.oid) != obj:
            return False
    return True
