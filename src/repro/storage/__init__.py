"""Storage substrates: main-memory stores, blob segregation, indexes."""

from .blobstore import BlobRef, BlobStore, resolve_value, spill_large_tuples
from .indexes import TupleIndex, build_index
from .memstore import MemStore, UnionStore
from .planner import QueryPlanner
from .reachability import (
    ReachabilityIndex,
    answer_closure_query,
    build_reachability,
    match_closure_shape,
)

__all__ = [
    "BlobRef",
    "BlobStore",
    "MemStore",
    "QueryPlanner",
    "ReachabilityIndex",
    "TupleIndex",
    "UnionStore",
    "answer_closure_query",
    "build_index",
    "build_reachability",
    "match_closure_shape",
    "resolve_value",
    "spill_large_tuples",
]
