"""Large-item segregation (paper §2, §5).

"We take advantage of large memories to cache all of the pointers,
keywords, and other such search information so that disk access is only
required to obtain large items."  The prototype was a main-memory
database; large payloads lived on disk and none of the test queries
touched them.

:class:`BlobStore` models that split: bulk payloads (text bodies, images,
object code) are moved out of the in-memory tuples and replaced by a
:class:`BlobRef` handle.  Filtering operates on the handle (an opaque
value — only ``?``/bind patterns match it, like any payload the server
does not understand); the payload is read back only when a ``→``
retrieval or an application actually needs the bits, and every such read
is counted as a simulated disk access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..core.objects import HFObject
from ..core.oid import Oid
from ..core.tuples import HFTuple
from ..errors import ObjectNotFound

#: Data smaller than this stays inline in the tuple (searchable values
#: such as strings, numbers and pointers are never spilled regardless).
DEFAULT_SPILL_THRESHOLD = 256


@dataclass(frozen=True)
class BlobRef:
    """Handle to a payload held in a :class:`BlobStore`."""

    oid: Oid
    key: Any
    size: int

    def __str__(self) -> str:
        return f"<blob {self.oid}/{self.key!r}: {self.size} bytes>"


class BlobStore:
    """Simulated on-disk payload store for one site."""

    def __init__(self, site: str) -> None:
        self._site = site
        self._blobs: Dict[Tuple[Tuple[str, int], Any], Any] = {}
        self.disk_reads = 0
        self.disk_writes = 0
        self.bytes_stored = 0

    @property
    def site(self) -> str:
        return self._site

    def put(self, oid: Oid, key: Any, payload: Any) -> BlobRef:
        """Write a payload to 'disk'; returns the handle to store inline."""
        size = _payload_size(payload)
        self._blobs[(oid.key(), key)] = payload
        self.disk_writes += 1
        self.bytes_stored += size
        return BlobRef(oid.without_hint(), key, size)

    def get(self, ref: BlobRef) -> Any:
        """Read a payload back (counts as one disk access)."""
        try:
            payload = self._blobs[(ref.oid.key(), ref.key)]
        except KeyError:
            raise ObjectNotFound(ref.oid, self._site) from None
        self.disk_reads += 1
        return payload

    def __len__(self) -> int:
        return len(self._blobs)


def spill_large_tuples(
    obj: HFObject,
    blobs: BlobStore,
    threshold: int = DEFAULT_SPILL_THRESHOLD,
) -> HFObject:
    """Move an object's bulky payloads into ``blobs``.

    Returns a new object in which every tuple whose data is a str/bytes
    payload of at least ``threshold`` bytes carries a :class:`BlobRef`
    instead.  Pointers, numbers and short strings (the search
    information) stay inline, so queries never touch the blob store.
    """
    replaced = []
    changed = False
    for t in obj.tuples:
        if isinstance(t.data, (str, bytes, bytearray)) and _payload_size(t.data) >= threshold:
            ref = blobs.put(obj.oid, t.key, t.data)
            replaced.append(HFTuple(t.type, t.key, ref))
            changed = True
        else:
            replaced.append(t)
    if not changed:
        return obj
    return HFObject(obj.oid, replaced, size_hint=obj.size_bytes)


def resolve_value(value: Any, blobs: Optional[BlobStore]) -> Any:
    """Dereference a retrieved value if it is a blob handle."""
    if isinstance(value, BlobRef):
        if blobs is None:
            raise ObjectNotFound(value.oid)
        return blobs.get(value)
    return value


def _payload_size(payload: Any) -> int:
    if isinstance(payload, (bytes, bytearray, str)):
        return len(payload)
    return 8
