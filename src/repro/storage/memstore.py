"""Main-memory object store (paper §2, §5).

The prototype in the paper is "a main memory database"; all pointers,
keywords and other search information are cached in RAM so that disk access
is only required for large items.  :class:`MemStore` is that RAM-resident
store for one site.  Large opaque payloads can be segregated into a
:class:`~repro.storage.blobstore.BlobStore` so filtering never touches
them (see :meth:`MemStore.put` with ``spill``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.objects import HFObject
from ..core.oid import Oid, OidAllocator
from ..core.tuples import HFTuple
from ..errors import DuplicateObject, ObjectNotFound


class MemStore:
    """Per-site in-memory store mapping object ids to objects.

    Lookups are hint-insensitive: an :class:`~repro.core.oid.Oid` with a
    stale presumed site still finds the object as long as it truly lives
    here (the identity is ``(birth_site, local_id)``).
    """

    def __init__(self, site: str) -> None:
        self._site = site
        self._objects: Dict[Tuple[str, int], HFObject] = {}
        self._allocator = OidAllocator(site)
        self.fetch_count = 0  # reads, for metrics and cache experiments
        #: Mutation epoch: bumped by every create/put/replace/remove.  The
        #: caching layer and the query planner key freshness off this — a
        #: cached answer is valid only while the epoch it was derived from
        #: is still current.  Reads never bump it.
        self._epoch = 0

    @property
    def site(self) -> str:
        return self._site

    @property
    def epoch(self) -> int:
        """Current mutation epoch (monotonic, starts at 0)."""
        return self._epoch

    @property
    def alloc_high(self) -> int:
        """Exclusive upper bound on local ids minted in this site's birth
        space: an oid ``(site, n)`` with ``n >= alloc_high`` cannot exist
        anywhere yet.  Covers both the local allocator and objects ``put``
        here under externally minted ids of this site."""
        high = self._allocator.peek()
        for birth, local_id in self._objects:
            if birth == self._site and local_id >= high:
                high = local_id + 1
        return high

    # -- creation --------------------------------------------------------

    def create(self, tuples: Iterable[HFTuple] = (), size_hint: Optional[int] = None) -> HFObject:
        """Mint a fresh id at this site and store a new object under it."""
        oid = self._allocator.allocate()
        obj = HFObject(oid, tuples, size_hint=size_hint)
        self._objects[oid.key()] = obj
        self._epoch += 1
        return obj

    def put(self, obj: HFObject, overwrite: bool = False) -> None:
        """Store ``obj`` under its existing id.

        Used when objects are generated elsewhere (workload generator,
        migration).  Without ``overwrite``, storing a second object under
        an existing id raises :class:`~repro.errors.DuplicateObject` —
        ids are immutable identities, not slots.
        """
        key = obj.oid.key()
        if not overwrite and key in self._objects:
            raise DuplicateObject(f"object {obj.oid} already stored at {self._site}")
        self._objects[key] = obj
        self._epoch += 1

    def replace(self, obj: HFObject) -> None:
        """Swap in a new version of an existing object (functional update)."""
        key = obj.oid.key()
        if key not in self._objects:
            raise ObjectNotFound(obj.oid, self._site)
        self._objects[key] = obj
        self._epoch += 1

    # -- access ------------------------------------------------------------

    def get(self, oid: Oid) -> HFObject:
        """Fetch an object; raises :class:`~repro.errors.ObjectNotFound`."""
        self.fetch_count += 1
        try:
            return self._objects[oid.key()]
        except KeyError:
            raise ObjectNotFound(oid, self._site) from None

    def contains(self, oid: Oid) -> bool:
        return oid.key() in self._objects

    def remove(self, oid: Oid) -> HFObject:
        """Delete and return an object (used by migration)."""
        try:
            obj = self._objects.pop(oid.key())
        except KeyError:
            raise ObjectNotFound(oid, self._site) from None
        self._epoch += 1
        return obj

    def oids(self) -> List[Oid]:
        """Ids of every object stored here, in insertion order."""
        return [obj.oid for obj in self._objects.values()]

    def objects(self) -> Iterator[HFObject]:
        return iter(self._objects.values())

    def scan(self, predicate: Callable[[HFObject], bool]) -> Iterator[HFObject]:
        """Full scan with a predicate — what a file server would have to do."""
        for obj in self._objects.values():
            self.fetch_count += 1
            if predicate(obj):
                yield obj

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, oid: object) -> bool:
        return isinstance(oid, Oid) and oid.key() in self._objects

    def __repr__(self) -> str:
        return f"MemStore(site={self._site!r}, {len(self._objects)} objects)"


class UnionStore:
    """Read-only view over several sites' stores as one database.

    The centralized baseline uses this to run "all objects at a single
    site" without copying the data set between configurations.
    """

    def __init__(self, stores: Iterable[MemStore]) -> None:
        self._stores = list(stores)

    def get(self, oid: Oid) -> HFObject:
        for store in self._stores:
            if store.contains(oid):
                return store.get(oid)
        raise ObjectNotFound(oid)

    def contains(self, oid: Oid) -> bool:
        return any(store.contains(oid) for store in self._stores)

    def oids(self) -> List[Oid]:
        out: List[Oid] = []
        for store in self._stores:
            out.extend(store.oids())
        return out

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores)
