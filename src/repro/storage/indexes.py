"""Conventional (inverted) indexes over tuple keys.

Paper §2: "In addition to the distributed server, we have developed
facilities for indexing [4].  These support conventional indexes (say for
keywords in documents) ..."  The companion reachability index lives in
:mod:`repro.storage.reachability`.

A :class:`TupleIndex` maps ``(tuple type, key value)`` to the set of
objects carrying such a tuple, letting a site answer pure selection
filters without scanning every object.  Indexes are site-local (each
site indexes only its own store), consistent with the paper's autonomy
requirements.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..core.objects import HFObject
from ..core.oid import Oid
from ..storage.memstore import MemStore

_Key = Tuple[str, Any]


class TupleIndex:
    """Inverted index: (type, key) -> object ids."""

    def __init__(self, indexed_types: Optional[Iterable[str]] = None) -> None:
        """
        Parameters
        ----------
        indexed_types:
            Restrict indexing to these tuple types (``None`` = index all).
            Applications typically index only search-key types; indexing
            opaque payload tuples would waste memory for no query benefit.
        """
        self._types = set(indexed_types) if indexed_types is not None else None
        self._entries: Dict[_Key, Set[Tuple[str, int]]] = {}
        self._oids: Dict[Tuple[str, int], Oid] = {}
        self.lookups = 0

    def add_object(self, obj: HFObject) -> None:
        """Index every eligible tuple of ``obj``."""
        self._oids[obj.oid.key()] = obj.oid
        for t in obj.tuples:
            if self._types is not None and t.type not in self._types:
                continue
            if not _hashable(t.key):
                continue
            self._entries.setdefault((t.type, t.key), set()).add(obj.oid.key())

    def remove_object(self, obj: HFObject) -> None:
        """Drop every entry for ``obj`` (call before replacing it)."""
        for t in obj.tuples:
            bucket = self._entries.get((t.type, t.key))
            if bucket is not None:
                bucket.discard(obj.oid.key())
                if not bucket:
                    del self._entries[(t.type, t.key)]
        self._oids.pop(obj.oid.key(), None)

    def find(self, type_name: str, key: Any) -> List[Oid]:
        """Objects carrying a ``(type_name, key, *)`` tuple."""
        self.lookups += 1
        keys = self._entries.get((type_name, key), ())
        return [self._oids[k] for k in keys]

    def find_keys(self, type_name: str, key: Any) -> Set[Tuple[str, int]]:
        """Identity keys of matching objects (cheap set-algebra form)."""
        self.lookups += 1
        return set(self._entries.get((type_name, key), ()))

    def postings(self, type_name: str) -> Dict[Any, int]:
        """Key-value histogram for one type (selectivity estimation)."""
        out: Dict[Any, int] = {}
        for (t, key), bucket in self._entries.items():
            if t == type_name:
                out[key] = len(bucket)
        return out

    def __len__(self) -> int:
        return len(self._entries)


def build_index(store: MemStore, indexed_types: Optional[Iterable[str]] = None) -> TupleIndex:
    """Index an entire store in one pass."""
    index = TupleIndex(indexed_types)
    for obj in store.objects():
        index.add_object(obj)
    return index


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True
