"""Index-aware query planning.

The paper separates mechanism from policy: the distributed engine answers
*every* query, and the indexing facilities (ref [4]) accelerate the
common shapes.  :class:`QueryPlanner` is the policy layer gluing them
together for a set of stores:

* the canonical closure shape ``S [ (Pointer,key,?X) ^^X ]* (t,v,?) -> T``
  is answered from a reachability index intersected with a tuple index —
  O(closure ∩ posting) instead of a full traversal;
* everything else falls back to engine traversal;
* indexes are built lazily per pointer key and invalidated on updates.

The planner is deliberately single-authority (it sees all stores), which
models the paper's suggestion of index facilities at the server; keeping
distributed indexes coherent across autonomous sites is beyond the
paper's scope and ours.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core.oid import Oid
from ..core.program import Program
from ..engine.local import run_local
from ..engine.results import QueryResult
from ..storage.indexes import TupleIndex
from ..storage.memstore import MemStore, UnionStore
from ..storage.reachability import (
    ReachabilityIndex,
    answer_closure_query,
    build_reachability,
    match_closure_shape,
)


class QueryPlanner:
    """Choose between index answering and engine traversal."""

    def __init__(self, stores: Iterable[MemStore]) -> None:
        self._stores: List[MemStore] = list(stores)
        self._union = UnionStore(self._stores)
        self._tuple_index: Optional[TupleIndex] = None
        self._reach: Dict[str, ReachabilityIndex] = {}
        #: Store epochs the current indexes were built against.  ``None``
        #: until the first build; any store mutating since (its epoch
        #: moved) drops every index — lazily rebuilt on the next query.
        #: Without this check a mutate-then-query sequence was answered
        #: from indexes describing the pre-mutation stores.
        self._built_epochs: Optional[Tuple[int, ...]] = None
        self.index_answers = 0
        self.engine_answers = 0

    # -- planning ----------------------------------------------------------

    def plan(self, program: Program) -> str:
        """``"index"`` when the program matches the accelerated shape."""
        return "index" if match_closure_shape(program) is not None else "engine"

    def execute(self, program: Program, initial: Iterable[Oid]) -> QueryResult:
        """Answer the query by the cheapest available route."""
        self._refresh()
        initial = list(initial)
        shape = match_closure_shape(program)
        if shape is not None:
            pointer_key = shape[0]
            result = answer_closure_query(
                program, initial, self._reachability(pointer_key), self._tuples()
            )
            if result is not None:
                self.index_answers += 1
                return result
        self.engine_answers += 1
        return run_local(program, initial, self._union.get)

    # -- index lifecycle ------------------------------------------------------

    def _refresh(self) -> None:
        """Drop indexes that no longer describe the stores they cover."""
        current = tuple(store.epoch for store in self._stores)
        if self._built_epochs is not None and self._built_epochs != current:
            self.invalidate_all()
        self._built_epochs = current

    def _tuples(self) -> TupleIndex:
        if self._tuple_index is None:
            index = TupleIndex()
            for store in self._stores:
                for obj in store.objects():
                    index.add_object(obj)
            self._tuple_index = index
        return self._tuple_index

    def _reachability(self, pointer_key: str) -> ReachabilityIndex:
        index = self._reach.get(pointer_key)
        if index is None:
            index = build_reachability(self._stores, pointer_key)
            self._reach[pointer_key] = index
        return index

    def notify_update(self, oid: Oid) -> None:
        """An object changed: refresh its index entries.

        Tuple-index maintenance is incremental; reachability closures are
        cache-invalidated by re-adding the object's edges.
        """
        obj = self._union.get(oid)
        if self._tuple_index is not None:
            self._tuple_index.remove_object(obj)
            self._tuple_index.add_object(obj)
        for index in self._reach.values():
            index.add_object(obj)
        current = tuple(store.epoch for store in self._stores)
        if self._built_epochs is not None and sum(current) - sum(self._built_epochs) == 1:
            # This call accounts for the single mutation since the last
            # build: the incremental fix keeps the indexes current, no
            # need to drop them at the next query.
            self._built_epochs = current

    def invalidate_all(self) -> None:
        """Bulk-load escape hatch: drop every index and rebuild lazily."""
        self._tuple_index = None
        self._reach.clear()
