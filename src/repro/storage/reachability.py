"""Reachability indexes (paper §2, ref [4]).

"... as well as indexes based on the reachability of an object (to speed
up queries such as 'Find all documents referenced directly or indirectly
by this document that in addition have a given keyword')."

A :class:`ReachabilityIndex` precomputes, per pointer key, the transitive
closure of the pointer graph, so the canonical HyperFile query shape

    Root [ (Pointer, key, ?X) | ^^X ]* (type, value, ?) -> T

can be answered by one closure lookup intersected with a
:class:`~repro.storage.indexes.TupleIndex` posting — no traversal at all.

:func:`answer_closure_query` reproduces the *engine's* semantics exactly,
including the subtlety that an object reached by the closure still has to
pass the iterator body (i.e. carry at least one pointer of the followed
key) before the trailing selection applies; ablation bench A4 property-
checks this equivalence against the real engine.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..core.objects import HFObject
from ..core.oid import Oid
from ..core.patterns import Literal
from ..core.program import DerefOp, LoopOp, Program, SelectOp
from ..engine.results import QueryResult
from ..storage.indexes import TupleIndex
from ..storage.memstore import MemStore

_IdKey = Tuple[str, int]


class ReachabilityIndex:
    """Per-pointer-key transitive-closure index over one (logical) store.

    Built over the *union* of sites when used for whole-database planning
    (index maintenance across sites is out of the paper's scope; it notes
    the facility exists and cites the companion report).
    """

    def __init__(self, pointer_key: str) -> None:
        self.pointer_key = pointer_key
        self._edges: Dict[_IdKey, Tuple[Oid, ...]] = {}
        self._oids: Dict[_IdKey, Oid] = {}
        self._closure_cache: Dict[_IdKey, FrozenSet[_IdKey]] = {}
        self.lookups = 0

    def add_object(self, obj: HFObject) -> None:
        self._oids[obj.oid.key()] = obj.oid
        self._edges[obj.oid.key()] = tuple(obj.pointers(key=self.pointer_key))
        self._closure_cache.clear()  # graph changed; cached closures are stale

    def successors(self, oid: Oid) -> Tuple[Oid, ...]:
        return self._edges.get(oid.key(), ())

    def has_outgoing(self, oid: Oid) -> bool:
        return bool(self._edges.get(oid.key()))

    def closure(self, roots: Iterable[Oid]) -> FrozenSet[_IdKey]:
        """Everything reachable from ``roots`` (inclusive) along this key."""
        self.lookups += 1
        root_keys = tuple(sorted(oid.key() for oid in roots))
        cache_key = root_keys[0] if len(root_keys) == 1 else None
        if cache_key is not None and cache_key in self._closure_cache:
            return self._closure_cache[cache_key]
        seen: Set[_IdKey] = set()
        frontier = deque(root_keys)
        seen.update(root_keys)
        while frontier:
            key = frontier.popleft()
            for target in self._edges.get(key, ()):
                tkey = target.key()
                if tkey not in seen:
                    seen.add(tkey)
                    frontier.append(tkey)
        result = frozenset(seen)
        if cache_key is not None:
            self._closure_cache[cache_key] = result
        return result

    def oid_for(self, key: _IdKey) -> Oid:
        return self._oids[key]

    def __len__(self) -> int:
        return len(self._edges)


def build_reachability(stores: Iterable[MemStore], pointer_key: str) -> ReachabilityIndex:
    """Index the pointer graph of one key across a set of stores."""
    index = ReachabilityIndex(pointer_key)
    for store in stores:
        for obj in store.objects():
            index.add_object(obj)
    return index


def match_closure_shape(program: Program) -> Optional[Tuple[str, str, Any]]:
    """Detect the canonical shape ``[ (Pointer,key,?X) ^^X ]* (t,v,?)``.

    Returns ``(pointer_key, search_type, search_value)`` when the program
    is exactly a closure traversal followed by one literal selection, or
    ``None`` when the planner must fall back to the engine.
    """
    ops = program.ops
    if len(ops) != 4:
        return None
    sel, der, loop, search = ops
    if not (isinstance(sel, SelectOp) and isinstance(der, DerefOp) and isinstance(loop, LoopOp)):
        return None
    if not isinstance(search, SelectOp):
        return None
    if loop.count is not None or loop.start != 1 or not der.keep_source:
        return None
    if not isinstance(sel.type_pattern, Literal) or sel.type_pattern.value != "Pointer":
        return None
    if not isinstance(sel.key_pattern, Literal):
        return None
    if not (isinstance(search.type_pattern, Literal) and isinstance(search.key_pattern, Literal)):
        return None
    return (
        str(sel.key_pattern.value),
        str(search.type_pattern.value),
        search.key_pattern.value,
    )


def answer_closure_query(
    program: Program,
    initial: Iterable[Oid],
    reach: ReachabilityIndex,
    tuples: TupleIndex,
) -> Optional[QueryResult]:
    """Answer a canonical closure query from the indexes alone.

    Engine-equivalent semantics: a result object must (a) be in the
    closure of the initial set, (b) carry at least one pointer of the
    followed key (it must pass the iterator body — see the leaf-drop
    subtlety in :mod:`repro.workload.graphs`), and (c) carry the search
    tuple.  Returns ``None`` when the program does not match the shape.
    """
    shape = match_closure_shape(program)
    if shape is None:
        return None
    pointer_key, search_type, search_value = shape
    if pointer_key != reach.pointer_key:
        return None
    closure = reach.closure(list(initial))
    matching = tuples.find_keys(search_type, search_value)
    result = QueryResult()
    for key in closure:
        if key in matching and reach.has_outgoing(reach.oid_for(key)):
            if result.oids.add(reach.oid_for(key)):
                result.stats.results_added += 1
    return result
