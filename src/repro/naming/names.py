"""Object migration under birth-site naming (paper §4).

:func:`migrate_object` moves one object between two sites' stores while
maintaining the naming invariants the query processor's
:meth:`~repro.server.node.ServerNode.locate` relies on:

1. the object is stored at exactly one site;
2. the departed site forwards to the object's new site;
3. the birth site's entry always points at the true current site (it is
   the final arbiter, consulted when hints go stale);
4. pointers to the object held inside other objects are *not* touched.

The paper treats the birth-site update as part of the move protocol; we
perform it synchronously (the move itself is an administrative operation,
not part of query processing, so its cost model is out of scope).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.oid import Oid
from ..errors import ObjectNotFound
from ..naming.directory import ForwardingTable
from ..storage.memstore import MemStore


def migrate_object(
    oid: Oid,
    stores: Dict[str, MemStore],
    forwarding: Dict[str, ForwardingTable],
    to_site: str,
) -> Oid:
    """Move ``oid`` to ``to_site``; returns the id re-hinted to its new home.

    ``stores`` and ``forwarding`` map site names to that site's store and
    forwarding table.  Raises :class:`~repro.errors.ObjectNotFound` if no
    site holds the object, ``KeyError`` if ``to_site`` is unknown.
    """
    if to_site not in stores:
        raise KeyError(f"unknown destination site {to_site!r}")
    from_site = find_holder(oid, stores)
    if from_site is None:
        raise ObjectNotFound(oid)
    if from_site == to_site:
        return oid.with_hint(to_site)

    obj = stores[from_site].remove(oid)
    stores[to_site].put(obj)

    # The departed site forwards; every *other* stale forward is updated
    # opportunistically if it exists; the birth site is always updated —
    # it is the final arbiter.
    forwarding[from_site].record(oid, to_site)
    for site, table in forwarding.items():
        if site != to_site and table.lookup(oid) is not None:
            table.record(oid, to_site)
    if oid.birth_site in forwarding:
        forwarding[oid.birth_site].record(oid, to_site)
    # The new home needs no entry (locate() finds it in the store);
    # clear any leftover forward from a previous residence here.
    forwarding[to_site].drop(oid)
    return oid.with_hint(to_site)


def find_holder(oid: Oid, stores: Dict[str, MemStore]) -> Optional[str]:
    """Which site actually stores ``oid`` right now?  (Test/admin helper.)"""
    for site, store in stores.items():
        if store.contains(oid):
            return site
    return None


def resolution_path(
    oid: Oid,
    start_site: str,
    stores: Dict[str, MemStore],
    forwarding: Dict[str, ForwardingTable],
    max_hops: int = 8,
) -> List[str]:
    """The chain of sites a dereference from ``start_site`` would visit.

    Mirrors :meth:`ServerNode.locate` hop by hop; used by tests to assert
    that resolution converges (and in how many hops) after migrations.
    """
    path = [start_site]
    site = start_site
    for _ in range(max_hops):
        if stores[site].contains(oid):
            return path
        forwarded = forwarding[site].lookup(oid)
        if forwarded is not None:
            nxt = forwarded
        elif oid.birth_site == site:
            return path  # arbiter says it does not exist
        elif oid.hint != site and len(path) == 1:
            nxt = oid.hint
        else:
            nxt = oid.birth_site
        if nxt == site:
            return path
        site = nxt
        path.append(site)
    return path
