"""Birth-site object naming and migration (paper §4)."""

from .directory import ForwardingTable
from .names import find_holder, migrate_object, resolution_path

__all__ = ["ForwardingTable", "find_holder", "migrate_object", "resolution_path"]
