"""Per-site forwarding tables for migrated objects (paper §4).

The paper adopts a variant of R*'s naming: an object id names its birth
site and a presumed current site.  "The birth site is the final arbiter of
the actual location of the object."  Concretely, when an object migrates:

* the site it *leaves* records a forwarding entry, so requests that chase
  a stale presumed-site hint get re-routed in one extra hop;
* the **birth site** updates its authoritative entry, so the fallback path
  (presumed site unknown or wrong) always converges.

There is deliberately no global name server — "name servers can add to the
cost of dereferencing a pointer" — and pointers embedded in objects are
never rewritten on migration, which is the whole point of the scheme
("the obvious alternative of including the host site as part of the
pointer seriously increases the cost of moving an object").
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.oid import Oid


class ForwardingTable:
    """One site's knowledge of where departed objects went."""

    def __init__(self, site: str) -> None:
        self._site = site
        self._entries: Dict[Tuple[str, int], str] = {}
        self.lookups = 0
        self.hits = 0

    @property
    def site(self) -> str:
        return self._site

    def record(self, oid: Oid, new_site: str) -> None:
        """Note that ``oid`` now lives at ``new_site``.

        Recording a forward to this same site removes the entry (the
        object came back).
        """
        if new_site == self._site:
            self._entries.pop(oid.key(), None)
        else:
            self._entries[oid.key()] = new_site

    def lookup(self, oid: Oid) -> Optional[str]:
        """Where did ``oid`` go?  ``None`` if this site has no forward."""
        self.lookups += 1
        found = self._entries.get(oid.key())
        if found is not None:
            self.hits += 1
        return found

    def drop(self, oid: Oid) -> None:
        """Forget a forwarding entry (e.g. after the object was deleted)."""
        self._entries.pop(oid.key(), None)

    def forwarded_keys(self) -> Tuple[Tuple[str, int], ...]:
        """Identity keys of every object forwarded away from this site.

        Site summaries include these in the holdings filter: the birth
        site must keep answering for migrated objects.
        """
        return tuple(self._entries.keys())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"ForwardingTable(site={self._site!r}, {len(self._entries)} entries)"
