"""Per-site forwarding tables for migrated objects (paper §4).

The paper adopts a variant of R*'s naming: an object id names its birth
site and a presumed current site.  "The birth site is the final arbiter of
the actual location of the object."  Concretely, when an object migrates:

* the site it *leaves* records a forwarding entry, so requests that chase
  a stale presumed-site hint get re-routed in one extra hop;
* the **birth site** updates its authoritative entry, so the fallback path
  (presumed site unknown or wrong) always converges.

There is deliberately no global name server — "name servers can add to the
cost of dereferencing a pointer" — and pointers embedded in objects are
never rewritten on migration, which is the whole point of the scheme
("the obvious alternative of including the host site as part of the
pointer seriously increases the cost of moving an object").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.oid import Oid


class ForwardingTable:
    """One site's knowledge of where departed objects went."""

    def __init__(self, site: str) -> None:
        self._site = site
        self._entries: Dict[Tuple[str, int], str] = {}
        self.lookups = 0
        self.hits = 0

    @property
    def site(self) -> str:
        return self._site

    def record(self, oid: Oid, new_site: str) -> None:
        """Note that ``oid`` now lives at ``new_site``.

        Recording a forward to this same site removes the entry (the
        object came back).
        """
        if new_site == self._site:
            self._entries.pop(oid.key(), None)
        else:
            self._entries[oid.key()] = new_site

    def lookup(self, oid: Oid) -> Optional[str]:
        """Where did ``oid`` go?  ``None`` if this site has no forward."""
        self.lookups += 1
        found = self._entries.get(oid.key())
        if found is not None:
            self.hits += 1
        return found

    def drop(self, oid: Oid) -> None:
        """Forget a forwarding entry (e.g. after the object was deleted)."""
        self._entries.pop(oid.key(), None)

    def forwarded_keys(self) -> Tuple[Tuple[str, int], ...]:
        """Identity keys of every object forwarded away from this site.

        Site summaries include these in the holdings filter: the birth
        site must keep answering for migrated objects.
        """
        return tuple(self._entries.keys())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"ForwardingTable(site={self._site!r}, {len(self._entries)} entries)"


@dataclass(frozen=True)
class ReplicaEntry:
    """One replicated object's directory record.

    ``sites`` is the placement-ordered holder list (primary first); any
    live holder may serve a dereference (read anycast).  ``version`` is
    the per-object write counter: every write-through mutation fan-out
    bumps it, and version-keyed caches treat a lower-versioned copy as
    stale (see docs/REPLICATION.md).
    """

    sites: Tuple[str, ...]
    version: int = 1


class ReplicaDirectory:
    """Cluster-wide map of which sites hold replicas of which objects.

    The paper's naming scheme (birth site as final arbiter) assumes each
    object resolves to exactly *one* site; replication relaxes that to a
    placement-ordered holder list.  The directory is the authoritative
    record: routing consults it for read-anycast candidates, failover
    consults it for the next live holder, and the caching layer consults
    it to refuse Bloom suppression against a site the directory says
    holds a current replica.

    Objects absent from the directory are unreplicated and keep the
    paper's single-holder semantics exactly — an empty directory makes
    every code path behave bit-identically to the replica-free build.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, int], ReplicaEntry] = {}
        self.lookups = 0

    def record(self, oid: Oid, sites: Iterable[str], version: Optional[int] = None) -> None:
        """Install (or re-place) ``oid``'s holder list.

        ``version`` defaults to preserving the current counter (1 for a
        brand-new entry); re-placement is not a write.
        """
        sites = tuple(sites)
        if not sites:
            raise ValueError(f"replica entry for {oid} needs at least one site")
        if len(set(sites)) != len(sites):
            raise ValueError(f"replica entry for {oid} lists a site twice: {sites}")
        if version is None:
            current = self._entries.get(oid.key())
            version = current.version if current is not None else 1
        self._entries[oid.key()] = ReplicaEntry(sites, version)

    def sites_of(self, oid: Oid) -> Tuple[str, ...]:
        """Placement-ordered holders of ``oid`` (empty = unreplicated)."""
        self.lookups += 1
        entry = self._entries.get(oid.key())
        return entry.sites if entry is not None else ()

    def version_of(self, oid: Oid) -> int:
        """Current write version of ``oid`` (0 = unreplicated)."""
        entry = self._entries.get(oid.key())
        return entry.version if entry is not None else 0

    def bump_version(self, oid: Oid) -> int:
        """Count one write-through mutation; returns the new version."""
        entry = self._entries.get(oid.key())
        if entry is None:
            raise KeyError(f"{oid} is not replicated")
        bumped = ReplicaEntry(entry.sites, entry.version + 1)
        self._entries[oid.key()] = bumped
        return bumped.version

    def holds(self, site: str, oid: Oid) -> bool:
        """Does the directory list ``site`` as a current holder of ``oid``?"""
        entry = self._entries.get(oid.key())
        return entry is not None and site in entry.sites

    def drop(self, oid: Oid) -> None:
        """Forget an entry (object destroyed or de-replicated)."""
        self._entries.pop(oid.key(), None)

    def entries(self) -> List[Tuple[Tuple[str, int], ReplicaEntry]]:
        """Every (oid key, entry) pair, in insertion order (tests/admin)."""
        return list(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"ReplicaDirectory({len(self._entries)} entries)"
