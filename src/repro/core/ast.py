"""Abstract syntax for HyperFile filtering queries (paper §2, §3).

A query is written

    Q :  S_i  F_1 F_2 ... F_n  -> S_o

where ``S_i`` names the initial set, ``S_o`` the result set, and each
``F_j`` is one of:

* a **selection** ``(type, key_pattern, data_pattern)`` — tuple pattern
  matching, possibly binding or using matching variables;
* a **dereference** ``↑X`` (keep only the referenced objects) or ``⇑X``
  (keep the pointing object as well) — follows the pointers bound to the
  matching variable ``X``;
* an **iterator** ``[ body ]^k`` (repeat ``k`` times) or ``[ body ]*``
  (transitive closure);
* a **retrieval** ``(type, key, →var)`` — ships matching data fields back
  to the application, bound to the program variable ``var``.

This module defines the *nested* form produced by the parser and builder.
:mod:`repro.core.program` flattens it into the indexed ``F_1..F_n`` form
the processing algorithm of paper §3 operates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Optional, Tuple

from .patterns import Pattern, as_pattern


class FilterNode:
    """Base class for the filter AST."""


    def walk(self) -> Iterator["FilterNode"]:
        """Yield this node and all descendants, pre-order."""
        yield self


@dataclass(frozen=True)
class Select(FilterNode):
    """Tuple-selection filter ``(type_pattern, key_pattern, data_pattern)``.

    An object passes when *any* of its tuples matches all three field
    patterns; bindings from every matching tuple accumulate into the
    object's matching-variable table.
    """

    type_pattern: Pattern
    key_pattern: Pattern
    data_pattern: Pattern


    @classmethod
    def of(cls, type_pattern: object, key_pattern: object = "?", data_pattern: object = "?") -> "Select":
        """Convenience constructor coercing plain values via :func:`as_pattern`."""
        return cls(as_pattern(type_pattern), as_pattern(key_pattern), as_pattern(data_pattern))

    def __str__(self) -> str:
        return f"({self.type_pattern}, {self.key_pattern}, {self.data_pattern})"


@dataclass(frozen=True)
class Deref(FilterNode):
    """Pointer dereference of matching variable ``var``.

    ``keep_source=True`` is the paper's ``⇑X`` (the pointing object
    continues through the remaining filters as well); ``keep_source=False``
    is ``↑X`` (only the referenced objects continue).
    """

    var: str
    keep_source: bool = True


    def __post_init__(self) -> None:
        if not self.var:
            raise ValueError("dereference requires a matching-variable name")

    def __str__(self) -> str:
        return ("^^" if self.keep_source else "^") + self.var


@dataclass(frozen=True)
class Iterate(FilterNode):
    """Iterator ``[ body ]^count`` or, when ``count`` is ``None``, ``[ body ]*``.

    The meaning of ``[parts]^k`` is to repeat the parts k times, as if the
    loop were unrolled; ``*`` computes the transitive closure of the
    pointer graph the body traverses (termination is guaranteed by the
    engine's mark table).
    """

    body: Tuple[FilterNode, ...]
    count: Optional[int] = None


    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("iterator body must contain at least one filter")
        if self.count is not None and self.count < 1:
            raise ValueError(f"iterator count must be >= 1, got {self.count}")

    @property
    def is_closure(self) -> bool:
        """True for ``*`` iterators (unbounded / transitive closure)."""
        return self.count is None

    def walk(self) -> Iterator[FilterNode]:
        yield self
        for child in self.body:
            yield from child.walk()

    def __str__(self) -> str:
        inner = " | ".join(str(f) for f in self.body)
        suffix = "*" if self.count is None else f"^{self.count}"
        return f"[ {inner} ]{suffix}"


@dataclass(frozen=True)
class Retrieve(FilterNode):
    """Field retrieval ``(type, key, →target)``.

    Matches like a selection whose data pattern is ``?``; additionally, the
    data field of every matching tuple is shipped to the query originator
    bound to ``target`` (an application-language variable name).
    """

    type_pattern: Pattern
    key_pattern: Pattern
    target: str


    def __post_init__(self) -> None:
        if not self.target:
            raise ValueError("retrieve requires a target variable name")

    @classmethod
    def of(cls, type_pattern: object, key_pattern: object, target: str) -> "Retrieve":
        return cls(as_pattern(type_pattern), as_pattern(key_pattern), target)

    def __str__(self) -> str:
        return f"({self.type_pattern}, {self.key_pattern}, ->{self.target})"


@dataclass(frozen=True)
class Query(FilterNode):
    """A complete query: initial set, filter pipeline, result-set name.

    ``source`` is the *name* of a set held by the client session (or, at
    the engine layer, resolved to explicit object ids before execution).
    ``result`` names the set the result ids will be bound to; further
    queries may use it as their source.
    """

    source: str
    filters: Tuple[FilterNode, ...]
    result: str = "_"


    def __post_init__(self) -> None:
        if not self.source:
            raise ValueError("query requires a source set name")
        for f in self.filters:
            if isinstance(f, Query):
                raise ValueError("queries cannot nest inside filter pipelines")

    def walk(self) -> Iterator[FilterNode]:
        yield self
        for child in self.filters:
            yield from child.walk()

    def variables_bound(self) -> FrozenSet[str]:
        """All matching variables bound anywhere in the query."""
        out = set()
        for node in self.walk():
            if isinstance(node, (Select, Retrieve)):
                out |= node.key_pattern.variables_bound()
                if isinstance(node, Select):
                    out |= node.type_pattern.variables_bound()
                    out |= node.data_pattern.variables_bound()
                else:
                    out |= node.type_pattern.variables_bound()
        return frozenset(out)

    def retrieval_targets(self) -> FrozenSet[str]:
        """All ``→var`` targets appearing in the query."""
        return frozenset(n.target for n in self.walk() if isinstance(n, Retrieve))

    def __str__(self) -> str:
        inner = " ".join(str(f) for f in self.filters)
        return f"{self.source} {inner} -> {self.result}"


def select(type_pattern: object, key_pattern: object = "?", data_pattern: object = "?") -> Select:
    """Shorthand for :meth:`Select.of`."""
    return Select.of(type_pattern, key_pattern, data_pattern)


def deref(var: str) -> Deref:
    """``↑X``: follow pointers bound to ``var``, dropping the pointing object."""
    return Deref(var, keep_source=False)


def deref_keep(var: str) -> Deref:
    """``⇑X``: follow pointers bound to ``var``, keeping the pointing object."""
    return Deref(var, keep_source=True)


def iterate(*body: FilterNode, count: Optional[int] = None) -> Iterate:
    """``[ body ]^count`` (or ``[ body ]*`` when count is omitted)."""
    return Iterate(tuple(body), count)


def closure(*body: FilterNode) -> Iterate:
    """``[ body ]*`` — transitive-closure iteration."""
    return Iterate(tuple(body), None)


def retrieve(type_pattern: object, key_pattern: object, target: str) -> Retrieve:
    """``(type, key, →target)`` retrieval filter."""
    return Retrieve.of(type_pattern, key_pattern, target)
