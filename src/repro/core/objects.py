"""HyperFile objects: sets of tuples (paper §2).

An object is an unordered collection of :class:`~repro.core.tuples.HFTuple`
values identified by an :class:`~repro.core.oid.Oid`.  There is no schema
and no object classes — the model is deliberately as elementary as a file
with self-describing records.

Objects are immutable once constructed; "editing" produces a new object
with the same id (stores swap the binding).  Immutability is what lets the
shared-memory engine of paper §6 process objects without locking.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Tuple

from .oid import Oid
from .tuples import HFTuple, pointer_tuple


class HFObject:
    """An immutable HyperFile object.

    Duplicate tuples are collapsed (the model is a *set* of tuples) while
    first-seen order is preserved for deterministic iteration, which keeps
    query traces and tests reproducible.
    """

    __slots__ = ("_oid", "_tuples", "_size_hint")

    def __init__(self, oid: Oid, tuples: Iterable[HFTuple] = (), size_hint: Optional[int] = None) -> None:
        if not isinstance(oid, Oid):
            raise TypeError(f"oid must be an Oid, got {type(oid).__name__}")
        seen = set()
        ordered: List[HFTuple] = []
        for t in tuples:
            if not isinstance(t, HFTuple):
                raise TypeError(f"expected HFTuple, got {type(t).__name__}")
            marker = _marker(t)
            if marker not in seen:
                seen.add(marker)
                ordered.append(t)
        self._oid = oid
        self._tuples = tuple(ordered)
        self._size_hint = size_hint

    @property
    def oid(self) -> Oid:
        """This object's identifier."""
        return self._oid

    @property
    def tuples(self) -> Tuple[HFTuple, ...]:
        """All tuples, in first-insertion order."""
        return self._tuples

    @property
    def size_bytes(self) -> int:
        """Approximate wire size of the object.

        Used by the file-server baseline (which must ship whole objects)
        and by the blob store's spill policy.  An explicit ``size_hint``
        wins; otherwise a cheap structural estimate is used.
        """
        if self._size_hint is not None:
            return self._size_hint
        total = 16  # header
        for t in self._tuples:
            total += 8 + _value_size(t.type) + _value_size(t.key) + _value_size(t.data)
        return total

    # -- tuple access helpers -------------------------------------------------

    def tuples_of_type(self, type_name: str) -> List[HFTuple]:
        """All tuples whose type field equals ``type_name``."""
        return [t for t in self._tuples if t.type == type_name]

    def tuples_with_key(self, key: Any) -> List[HFTuple]:
        """All tuples whose key field equals ``key``."""
        return [t for t in self._tuples if t.key == key]

    def first(self, type_name: str, key: Any) -> Optional[HFTuple]:
        """First tuple matching ``(type_name, key, *)``, or ``None``."""
        for t in self._tuples:
            if t.type == type_name and t.key == key:
                return t
        return None

    def values(self, type_name: str, key: Any) -> List[Any]:
        """Data fields of every tuple matching ``(type_name, key, *)``."""
        return [t.data for t in self._tuples if t.type == type_name and t.key == key]

    def pointers(self, key: Any = None) -> List[Oid]:
        """All pointer-valued data fields, optionally restricted to one key.

        Follows the structural definition (data field is an Oid) so that
        application-defined pointer types are included.
        """
        out: List[Oid] = []
        for t in self._tuples:
            if isinstance(t.data, Oid) and (key is None or t.key == key):
                out.append(t.data)
        return out

    # -- functional update helpers --------------------------------------------

    def with_tuple(self, new: HFTuple) -> "HFObject":
        """Return a copy of this object with one tuple added."""
        return HFObject(self._oid, self._tuples + (new,), size_hint=self._size_hint)

    def with_tuples(self, extra: Iterable[HFTuple]) -> "HFObject":
        """Return a copy of this object with several tuples added."""
        return HFObject(self._oid, self._tuples + tuple(extra), size_hint=self._size_hint)

    def without(self, type_name: str, key: Any = None) -> "HFObject":
        """Return a copy with matching tuples removed (all keys if key is None)."""
        kept = [
            t
            for t in self._tuples
            if not (t.type == type_name and (key is None or t.key == key))
        ]
        return HFObject(self._oid, kept, size_hint=self._size_hint)

    def relocated(self, oid: Oid) -> "HFObject":
        """Return a copy carrying a different id (used by migration tooling)."""
        return HFObject(oid, self._tuples, size_hint=self._size_hint)

    # -- dunder protocol -------------------------------------------------------

    def __iter__(self) -> Iterator[HFTuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, item: HFTuple) -> bool:
        return item in self._tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HFObject):
            return NotImplemented
        return self._oid == other._oid and frozenset(map(_marker, self._tuples)) == frozenset(
            map(_marker, other._tuples)
        )

    def __hash__(self) -> int:
        return hash(self._oid)

    def __repr__(self) -> str:
        return f"HFObject({self._oid}, {len(self._tuples)} tuples)"


def make_set_object(oid: Oid, members: Iterable[Oid], key: str = "Member") -> HFObject:
    """Build a *set object* (paper §2).

    HyperFile represents a set of objects as an ordinary object whose
    tuples point at the members: "The set of objects {A, B, C} is simply an
    object containing three tuples, one of which points to each of A, B,
    and C."  Query initial sets and query results are both stored this way.
    """
    return HFObject(oid, [pointer_tuple(key, m) for m in members])


def set_members(obj: HFObject, key: str = "Member") -> List[Oid]:
    """Extract the member ids from a set object built by :func:`make_set_object`."""
    return obj.pointers(key=key)


def _marker(t: HFTuple) -> tuple:
    """Hashable identity for set-semantics dedup, tolerant of unhashable
    keys/payloads (which fall back to their repr)."""
    key = t.key if _hashable(t.key) else repr(t.key)
    data = t.data if _hashable(t.data) else repr(t.data)
    return (t.type, key, data)


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


def _value_size(value: Any) -> int:
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, Oid):
        return len(value.birth_site) + 12
    return 8
