"""Tuple-type registry (paper §2).

HyperFile tuples have a *type* field that tells the server how to interpret
the key and data fields.  The set of types is open: "the possible entries in
the type field are not fixed; applications can define new types."  The
server only understands a handful of built-in interpretations (strings,
numbers, keywords, pointers, opaque blobs); an application-defined type maps
onto one of those interpretations by convention.

A :class:`TypeRegistry` records, per type name, which *kind* of value the
key and data fields hold.  The engine consults the registry only for the
things the paper says HyperFile understands: whether a data field is a
pointer (so dereference filters know what to follow) and how to compare
values during pattern matching.  Everything else is opaque.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, Optional


class FieldKind(Enum):
    """Interpretation the server applies to a tuple field."""

    STRING = "string"    #: text compared with string semantics / regex
    NUMBER = "number"    #: int/float compared with numeric semantics / ranges
    POINTER = "pointer"  #: an Oid; eligible for dereference filters
    OPAQUE = "opaque"    #: arbitrary bits; only ``?``/bind patterns match


@dataclass(frozen=True)
class TupleType:
    """Declaration of one tuple type.

    ``name`` is the value applications place in the tuple's type field;
    ``key_kind``/``data_kind`` say how the server interprets the other two
    fields.
    """

    name: str
    key_kind: FieldKind
    data_kind: FieldKind

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tuple type name must be non-empty")


#: Built-in types mirroring the examples used throughout the paper.
BUILTIN_TYPES = (
    TupleType("String", FieldKind.STRING, FieldKind.STRING),
    TupleType("Text", FieldKind.STRING, FieldKind.OPAQUE),
    TupleType("Keyword", FieldKind.STRING, FieldKind.STRING),
    TupleType("Number", FieldKind.STRING, FieldKind.NUMBER),
    TupleType("Pointer", FieldKind.STRING, FieldKind.POINTER),
    TupleType("Blob", FieldKind.STRING, FieldKind.OPAQUE),
)


class TypeRegistry:
    """Mutable mapping from type name to :class:`TupleType`.

    Lookups are case-sensitive, matching the paper's treatment of type
    names as opaque labels agreed between applications.  Unknown types are
    permitted in stored tuples (the server does not reject data it does not
    understand); they behave as ``OPAQUE``/``OPAQUE`` during matching.
    """

    def __init__(self, include_builtins: bool = True) -> None:
        self._types: Dict[str, TupleType] = {}
        if include_builtins:
            for t in BUILTIN_TYPES:
                self._types[t.name] = t

    def define(
        self,
        name: str,
        key_kind: FieldKind = FieldKind.STRING,
        data_kind: FieldKind = FieldKind.OPAQUE,
    ) -> TupleType:
        """Register an application-defined type.

        Redefinition with identical kinds is an idempotent no-op;
        redefinition with different kinds raises ``ValueError`` because
        silently changing interpretation would corrupt pattern matching for
        other applications sharing the server.
        """
        new = TupleType(name, key_kind, data_kind)
        existing = self._types.get(name)
        if existing is not None and existing != new:
            raise ValueError(
                f"type {name!r} already defined as {existing}, cannot redefine as {new}"
            )
        self._types[name] = new
        return new

    def get(self, name: str) -> Optional[TupleType]:
        """Return the declaration for ``name``, or ``None`` if unknown."""
        return self._types.get(name)

    def lookup(self, name: str) -> TupleType:
        """Return the declaration for ``name``, defaulting unknown types to opaque."""
        found = self._types.get(name)
        if found is not None:
            return found
        return TupleType(name, FieldKind.OPAQUE, FieldKind.OPAQUE)

    def is_pointer_type(self, name: str) -> bool:
        """True if tuples of this type carry an object pointer in the data field."""
        return self.lookup(name).data_kind is FieldKind.POINTER

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[TupleType]:
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)


#: Shared default registry used when callers do not supply their own.
DEFAULT_REGISTRY = TypeRegistry()
