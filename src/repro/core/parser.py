"""Parser for the textual HyperFile query language.

The paper writes queries like::

    S [ (Pointer, "Reference", ?X) | ^^X ]* (Keyword, "Distributed", ?) -> T

This module accepts an ASCII rendering of that syntax:

===========================  ====================================================
Paper notation               ASCII form accepted here
===========================  ====================================================
``(type, key, data)``        ``(type, key, data)`` — selection filter
``↑X`` (keep referenced)     ``^X``
``⇑X`` (keep both)           ``^^X``
``[ body ]^k``               ``[ body ]^k``
``[ body ]*``                ``[ body ]*``
``→var`` (retrieval)         ``->var`` in the data position
``?`` / ``?X``               ``?`` / ``?X``
use of variable ``X``        ``$X``
``-> T`` (result binding)    ``-> T``
===========================  ====================================================

Patterns may additionally be double-quoted strings (with ``\\"`` and ``\\\\``
escapes), bare identifiers (treated as literal strings — handy for type
names), numbers, numeric ranges ``lo..hi`` (either side open), and regular
expressions ``/re/``.  The ``|`` separators the paper draws between filters
inside iterator brackets are accepted anywhere and ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from ..errors import QuerySyntaxError
from .ast import Deref, FilterNode, Iterate, Query, Retrieve, Select
from .patterns import ANY, Bind, Literal, Pattern, Range, Regex, Use

# --------------------------------------------------------------------------
# Lexer
# --------------------------------------------------------------------------

_PUNCT = {
    "(": "LPAREN",
    ")": "RPAREN",
    "[": "LBRACK",
    "]": "RBRACK",
    ",": "COMMA",
    "|": "PIPE",
    "*": "STAR",
}


@dataclass(frozen=True)
class Token:
    kind: str
    value: object
    pos: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.value!r})@{self.pos}"


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into tokens; raises :class:`QuerySyntaxError` on junk."""
    tokens: List[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        if text.startswith("->", i):
            tokens.append(Token("ARROW", "->", i))
            i += 2
            continue
        if text.startswith("^^", i):
            tokens.append(Token("DDEREF", "^^", i))
            i += 2
            continue
        if ch == "^":
            tokens.append(Token("CARET", "^", i))
            i += 1
            continue
        if text.startswith("..", i):
            tokens.append(Token("DOTDOT", "..", i))
            i += 2
            continue
        if ch == "?":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            name = text[i + 1 : j]
            tokens.append(Token("QMARK", name, i))  # name may be ""
            i = j
            continue
        if ch == "$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise QuerySyntaxError("expected variable name after '$'", i, text)
            tokens.append(Token("DOLLAR", text[i + 1 : j], i))
            i = j
            continue
        if ch == '"':
            value, i = _scan_string(text, i)
            tokens.append(Token("STRING", value, i))
            continue
        if ch == "/":
            j = i + 1
            out = []
            while j < n and text[j] != "/":
                if text[j] == "\\" and j + 1 < n and text[j + 1] == "/":
                    out.append("/")
                    j += 2
                else:
                    out.append(text[j])
                    j += 1
            if j >= n:
                raise QuerySyntaxError("unterminated regular expression", i, text)
            tokens.append(Token("REGEX", "".join(out), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            value, i2 = _scan_number(text, i)
            tokens.append(Token("NUMBER", value, i))
            i = i2
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("IDENT", text[i:j], i))
            i = j
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r}", i, text)
    tokens.append(Token("EOF", None, n))
    return tokens


def _scan_string(text: str, start: int) -> Tuple[str, int]:
    out = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n:
            nxt = text[i + 1]
            if nxt in ('"', "\\"):
                out.append(nxt)
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt == "t":
                out.append("\t")
                i += 2
                continue
            out.append(nxt)
            i += 2
            continue
        if ch == '"':
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise QuerySyntaxError("unterminated string literal", start, text)


def _scan_number(text: str, start: int) -> Tuple[Union[int, float], int]:
    i = start
    n = len(text)
    if text[i] == "-":
        i += 1
    while i < n and text[i].isdigit():
        i += 1
    is_float = False
    # A '.' begins a fraction only if NOT part of a '..' range operator.
    if i < n and text[i] == "." and not text.startswith("..", i):
        is_float = True
        i += 1
        while i < n and text[i].isdigit():
            i += 1
    literal = text[start:i]
    return (float(literal) if is_float else int(literal)), i


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[Token], text: str) -> None:
        self.tokens = tokens
        self.text = text
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.next()
        if tok.kind != kind:
            raise QuerySyntaxError(f"expected {kind}, found {tok.kind}", tok.pos, self.text)
        return tok

    def error(self, message: str) -> QuerySyntaxError:
        tok = self.peek()
        return QuerySyntaxError(message, tok.pos, self.text)

    # -- grammar ---------------------------------------------------------------

    def parse_query(self) -> Query:
        source = self.expect("IDENT").value
        filters = self.parse_filter_sequence(stop_kinds=("ARROW", "EOF"))
        result = "_"
        if self.peek().kind == "ARROW":
            self.next()
            result = self.expect("IDENT").value
        self.expect("EOF")
        return Query(str(source), tuple(filters), str(result))

    def parse_filter_sequence(self, stop_kinds: Tuple[str, ...]) -> List[FilterNode]:
        filters: List[FilterNode] = []
        while True:
            tok = self.peek()
            if tok.kind in stop_kinds:
                return filters
            if tok.kind == "PIPE":
                self.next()  # separators are decorative
                continue
            filters.append(self.parse_filter())

    def parse_filter(self) -> FilterNode:
        tok = self.peek()
        if tok.kind == "LPAREN":
            return self.parse_selection_or_retrieve()
        if tok.kind == "DDEREF":
            self.next()
            return Deref(self._deref_var(), keep_source=True)
        if tok.kind == "CARET":
            self.next()
            return Deref(self._deref_var(), keep_source=False)
        if tok.kind == "LBRACK":
            return self.parse_iterator()
        raise self.error(f"expected a filter, found {tok.kind}")

    def _deref_var(self) -> str:
        tok = self.next()
        if tok.kind == "IDENT":
            return str(tok.value)
        if tok.kind == "QMARK" and tok.value:
            # Tolerate '^?X' — some writers carry the '?' into the deref.
            return str(tok.value)
        raise QuerySyntaxError("expected matching-variable name after dereference", tok.pos, self.text)

    def parse_iterator(self) -> Iterate:
        self.expect("LBRACK")
        body = self.parse_filter_sequence(stop_kinds=("RBRACK",))
        close = self.expect("RBRACK")
        if not body:
            raise QuerySyntaxError("iterator body is empty", close.pos, self.text)
        tok = self.peek()
        if tok.kind == "STAR":
            self.next()
            return Iterate(tuple(body), None)
        if tok.kind == "CARET":
            self.next()
            count_tok = self.expect("NUMBER")
            count = count_tok.value
            if not isinstance(count, int):
                raise QuerySyntaxError("iterator count must be an integer", count_tok.pos, self.text)
            return Iterate(tuple(body), count)
        raise QuerySyntaxError("iterator must end with '*' or '^k'", tok.pos, self.text)

    def parse_selection_or_retrieve(self) -> FilterNode:
        self.expect("LPAREN")
        type_pattern = self.parse_pattern()
        self.expect("COMMA")
        key_pattern = self.parse_pattern()
        self.expect("COMMA")
        if self.peek().kind == "ARROW":
            self.next()
            target = self.expect("IDENT").value
            self.expect("RPAREN")
            return Retrieve(type_pattern, key_pattern, str(target))
        data_pattern = self.parse_pattern()
        self.expect("RPAREN")
        return Select(type_pattern, key_pattern, data_pattern)

    def parse_pattern(self) -> Pattern:
        tok = self.next()
        if tok.kind == "QMARK":
            return Bind(str(tok.value)) if tok.value else ANY
        if tok.kind == "DOLLAR":
            return Use(str(tok.value))
        if tok.kind == "STRING" or tok.kind == "IDENT":
            return Literal(str(tok.value))
        if tok.kind == "REGEX":
            return Regex(str(tok.value))
        if tok.kind == "NUMBER":
            if self.peek().kind == "DOTDOT":
                self.next()
                if self.peek().kind == "NUMBER":
                    hi = self.next().value
                    return Range(tok.value, hi)  # type: ignore[arg-type]
                return Range(tok.value, None)  # type: ignore[arg-type]
            return Literal(tok.value)
        if tok.kind == "DOTDOT":
            hi_tok = self.expect("NUMBER")
            return Range(None, hi_tok.value)  # type: ignore[arg-type]
        raise QuerySyntaxError(f"expected a pattern, found {tok.kind}", tok.pos, self.text)


def parse_query(text: str) -> Query:
    """Parse a complete query string into a :class:`~repro.core.ast.Query`."""
    return _Parser(tokenize(text), text).parse_query()


def parse_filters(text: str) -> Tuple[FilterNode, ...]:
    """Parse a bare filter pipeline (no source set, no ``-> T`` binding)."""
    parser = _Parser(tokenize(text), text)
    filters = parser.parse_filter_sequence(stop_kinds=("EOF",))
    parser.expect("EOF")
    if not filters:
        raise QuerySyntaxError("no filters found", 0, text)
    return tuple(filters)
