"""Patterns for tuple selection filters (paper §3.1).

A selection filter ``(type_pattern, key_pattern, data_pattern)`` matches a
tuple field-by-field.  The paper enumerates what a pattern may be:

* a **simple comparison** — equivalence against a literal, a regular
  expression for strings, or a range of values for a number;
* the wildcard ``?`` — matches anything;
* a **matching-variable setter** ``?X`` — matches anything and adds the
  field value to the object's bindings for ``X``;
* a **matching-variable use** — matches when the field value is among the
  current bindings of ``X`` (used e.g. to find routines "Maintained by"
  one of the "Author"s).

Matching is side-effect free: :meth:`Pattern.match` returns the bindings to
add rather than mutating the variable table, so the engine's ``E`` function
controls exactly when ``O.mvars`` changes (a tuple that fails on a later
field must not leave bindings behind).
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, FrozenSet, Mapping, Optional, Sequence, Set, Tuple

from .oid import Oid

#: The variable table type: variable name -> set of bound values.
MVars = Mapping[str, Set[Any]]

#: Result of a match: (matched?, ((var, value), ...) bindings to add).
MatchResult = Tuple[bool, Tuple[Tuple[str, Any], ...]]

_NO_BINDINGS: Tuple[Tuple[str, Any], ...] = ()
_MISS: MatchResult = (False, _NO_BINDINGS)
_HIT: MatchResult = (True, _NO_BINDINGS)


class Pattern(ABC):
    """Abstract field pattern."""


    @abstractmethod
    def match(self, value: Any, mvars: MVars) -> MatchResult:
        """Test ``value``; return (matched, bindings-to-add)."""

    def variables_bound(self) -> FrozenSet[str]:
        """Names of matching variables this pattern can bind."""
        return frozenset()

    def variables_used(self) -> FrozenSet[str]:
        """Names of matching variables this pattern reads."""
        return frozenset()


@dataclass(frozen=True)
class Any_(Pattern):
    """The ``?`` wildcard: matches any field value."""


    def match(self, value: Any, mvars: MVars) -> MatchResult:
        return _HIT

    def __str__(self) -> str:
        return "?"


#: Singleton instance; patterns are immutable so sharing is safe.
ANY = Any_()


@dataclass(frozen=True)
class Literal(Pattern):
    """Equivalence against a constant.

    Numeric literals compare with numeric semantics (``5 == 5.0``); object
    ids compare by identity key so stale presumed-site hints do not break
    matching; everything else uses plain equality.
    """

    value: Any


    def match(self, value: Any, mvars: MVars) -> MatchResult:
        return (_values_equal(self.value, value), _NO_BINDINGS)

    def __str__(self) -> str:
        # Render in the textual query language's own syntax so that
        # str(query) re-parses (strings are double-quoted there).
        if isinstance(self.value, str):
            escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return repr(self.value)


@dataclass(frozen=True)
class Regex(Pattern):
    """Regular-expression match over string fields (full-match semantics)."""

    pattern: str


    def __post_init__(self) -> None:
        re.compile(self.pattern)  # fail fast on bad regexes

    def match(self, value: Any, mvars: MVars) -> MatchResult:
        if not isinstance(value, str):
            return _MISS
        return (re.fullmatch(self.pattern, value) is not None, _NO_BINDINGS)

    def __str__(self) -> str:
        return f"/{self.pattern}/"


@dataclass(frozen=True)
class Range(Pattern):
    """Closed numeric range ``lo..hi`` (either bound may be ``None`` = open)."""

    lo: Optional[float] = None
    hi: Optional[float] = None


    def __post_init__(self) -> None:
        if self.lo is None and self.hi is None:
            raise ValueError("range must bound at least one side")
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"empty range {self.lo}..{self.hi}")

    def match(self, value: Any, mvars: MVars) -> MatchResult:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return _MISS
        if self.lo is not None and value < self.lo:
            return _MISS
        if self.hi is not None and value > self.hi:
            return _MISS
        return _HIT

    def __str__(self) -> str:
        lo = "" if self.lo is None else self.lo
        hi = "" if self.hi is None else self.hi
        return f"{lo}..{hi}"


@dataclass(frozen=True)
class OneOf(Pattern):
    """Membership in an explicit finite set of constants."""

    values: Tuple[Any, ...]


    def __init__(self, values: Sequence[Any]) -> None:
        object.__setattr__(self, "values", tuple(values))
        if not self.values:
            raise ValueError("OneOf requires at least one value")

    def match(self, value: Any, mvars: MVars) -> MatchResult:
        return (any(_values_equal(v, value) for v in self.values), _NO_BINDINGS)

    def __str__(self) -> str:
        return "{" + ", ".join(map(repr, self.values)) + "}"


@dataclass(frozen=True)
class Bind(Pattern):
    """``?X`` — match anything and bind the field value to variable ``X``.

    Formally (paper §3.1): ``O.mvars(X) = O.mvars(X) ∪ {field_value}``;
    the field matches regardless of value.
    """

    name: str


    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("matching variable name must be non-empty")

    def match(self, value: Any, mvars: MVars) -> MatchResult:
        return (True, ((self.name, value),))

    def variables_bound(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Use(Pattern):
    """Match when the field value is among the bindings of variable ``X``.

    Formally: matches iff ``field_value ∈ O.mvars(X)``.  An unbound
    variable has an empty binding set and therefore never matches.
    """

    name: str


    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("matching variable name must be non-empty")

    def match(self, value: Any, mvars: MVars) -> MatchResult:
        bound = mvars.get(self.name, ())
        return (any(_values_equal(v, value) for v in bound), _NO_BINDINGS)

    def variables_used(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return f"${self.name}"


def as_pattern(value: Any) -> Pattern:
    """Coerce a convenience value into a :class:`Pattern`.

    ``Pattern`` instances pass through; ``"?"`` becomes the wildcard;
    strings beginning with ``?`` become binders; strings beginning with
    ``$`` become variable uses; anything else is a literal.  Applications
    wanting to match the literal strings ``"?"``/``"?X"``/``"$X"`` should
    construct :class:`Literal` explicitly.
    """
    if isinstance(value, Pattern):
        return value
    if isinstance(value, str):
        if value == "?":
            return ANY
        if value.startswith("?") and len(value) > 1:
            return Bind(value[1:])
        if value.startswith("$") and len(value) > 1:
            return Use(value[1:])
    return Literal(value)


def _values_equal(a: Any, b: Any) -> bool:
    """Equality with oid-hint insensitivity and cross-numeric comparison."""
    if isinstance(a, Oid) and isinstance(b, Oid):
        return a.key() == b.key()
    if isinstance(a, bool) != isinstance(b, bool):
        # bool is an int subtype; keep True distinct from 1 in patterns.
        return False
    return a == b
