"""Object identifiers with birth-site / presumed-site naming (paper §4).

The paper adopts a variant of the R* naming scheme: an object id embeds the
*birth site* (the site where the object was created, which remains the final
arbiter of its location forever) and a *presumed site* hint (where the object
was last known to live).  Dereferencing first tries the presumed site; on a
miss it falls back to the birth site, which either holds the object or a
forwarding record.

Identity is determined by ``(birth_site, local_id)`` only.  The presumed
site is a routing hint: two ids naming the same object compare and hash
equal even when their hints disagree, which is essential because hints go
stale as objects migrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Oid:
    """Globally unique object identifier.

    Parameters
    ----------
    birth_site:
        Identifier of the site where the object was created.  Never changes.
    local_id:
        Sequence number unique within the birth site.
    presumed_site:
        Hint naming the site currently believed to hold the object.  May be
        ``None`` (meaning "assume the birth site") and may be stale.
        Excluded from equality and hashing.
    """

    birth_site: str
    local_id: int
    presumed_site: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.birth_site, str) or not self.birth_site:
            raise ValueError("birth_site must be a non-empty string")
        if not isinstance(self.local_id, int) or self.local_id < 0:
            raise ValueError("local_id must be a non-negative integer")

    @property
    def hint(self) -> str:
        """Site to try first when dereferencing this id."""
        return self.presumed_site if self.presumed_site is not None else self.birth_site

    def with_hint(self, site: str) -> "Oid":
        """Return a copy of this id whose presumed site is ``site``."""
        return Oid(self.birth_site, self.local_id, presumed_site=site)

    def without_hint(self) -> "Oid":
        """Return the canonical form of this id (no presumed-site hint)."""
        if self.presumed_site is None:
            return self
        return Oid(self.birth_site, self.local_id)

    def key(self) -> tuple:
        """Hashable identity key, independent of the routing hint."""
        return (self.birth_site, self.local_id)

    def __str__(self) -> str:
        if self.presumed_site is not None and self.presumed_site != self.birth_site:
            return f"{self.birth_site}:{self.local_id}@{self.presumed_site}"
        return f"{self.birth_site}:{self.local_id}"

    @classmethod
    def parse(cls, text: str) -> "Oid":
        """Parse the ``birth:seq[@hint]`` form produced by :meth:`__str__`."""
        hint: Optional[str] = None
        if "@" in text:
            text, hint = text.rsplit("@", 1)
        try:
            birth, seq = text.rsplit(":", 1)
            return cls(birth, int(seq), presumed_site=hint)
        except (ValueError, TypeError) as exc:
            raise ValueError(f"malformed oid {text!r}") from exc


class OidAllocator:
    """Per-site allocator handing out fresh :class:`Oid` values.

    Each site owns one allocator; ids it mints carry the site as both birth
    and presumed site.
    """

    def __init__(self, site: str, start: int = 0) -> None:
        self._site = site
        self._next = start

    @property
    def site(self) -> str:
        return self._site

    def allocate(self) -> Oid:
        """Mint the next id for this site."""
        oid = Oid(self._site, self._next, presumed_site=self._site)
        self._next += 1
        return oid

    def peek(self) -> int:
        """Sequence number the next :meth:`allocate` call will use."""
        return self._next
