"""The HyperFile tuple: ``(type, key, data)`` (paper §2).

Objects are modelled as sets of tuples.  A tuple has three parts:

* a **type**, identifying the data types of the remaining fields;
* a **key**, used by the application to state the tuple's purpose
  (e.g. ``"Title"``, ``"Author"``, ``"Called Routine"``);
* a **data** field, which may be a simple value the server understands
  (string, number, pointer) or an opaque payload (text, object code,
  bitmaps) the server treats as a sequence of bits.

Tuples are immutable value objects; object updates replace tuples rather
than mutating them, which keeps concurrent query processing safe without
locks (paper §6 relies on operations being idempotent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .oid import Oid


@dataclass(frozen=True)
class HFTuple:
    """One immutable ``(type, key, data)`` tuple.

    ``data`` may be any hashable Python value; by convention it is a
    ``str`` for string/keyword types, ``int``/``float`` for numbers, an
    :class:`~repro.core.oid.Oid` for pointer types, and ``bytes`` for
    opaque payloads.  The server enforces nothing here — interpretation is
    driven by the :class:`~repro.core.types.TypeRegistry` at match time —
    but :func:`tuple_of` below offers checked constructors for the common
    cases.
    """

    type: str
    key: Any
    data: Any

    def __post_init__(self) -> None:
        if not isinstance(self.type, str) or not self.type:
            raise ValueError("tuple type must be a non-empty string")

    @property
    def is_pointer(self) -> bool:
        """True when the data field holds an object id.

        This is a structural check (is the payload an Oid), used by the
        engine as a fast path; authoritative interpretation goes through
        the type registry.
        """
        return isinstance(self.data, Oid)

    def __str__(self) -> str:
        return f"({self.type}, {self.key!r}, {self.data!r})"


def string_tuple(key: str, value: str) -> HFTuple:
    """Build a ``String`` tuple, e.g. ``("String", "Title", "Main Program")``."""
    if not isinstance(value, str):
        raise TypeError(f"String tuple data must be str, got {type(value).__name__}")
    return HFTuple("String", key, value)


def text_tuple(key: str, value: str) -> HFTuple:
    """Build a ``Text`` tuple holding a body of text the server treats as opaque."""
    return HFTuple("Text", key, value)


def keyword_tuple(keyword: str, value: Any = "") -> HFTuple:
    """Build a ``Keyword`` tuple.

    The paper's queries match keywords by *key* — e.g.
    ``(keyword, "Distributed", ?)`` — so the keyword itself goes in the key
    field and the data field is free for application use.
    """
    return HFTuple("Keyword", keyword, value)


def number_tuple(key: str, value: float) -> HFTuple:
    """Build a ``Number`` tuple, e.g. a chip's clock speed."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"Number tuple data must be int or float, got {type(value).__name__}")
    return HFTuple("Number", key, value)


def pointer_tuple(key: str, target: Oid) -> HFTuple:
    """Build a ``Pointer`` tuple referencing another object (hypertext link)."""
    if not isinstance(target, Oid):
        raise TypeError(f"Pointer tuple data must be an Oid, got {type(target).__name__}")
    return HFTuple("Pointer", key, target)


def blob_tuple(key: str, payload: bytes) -> HFTuple:
    """Build a ``Blob`` tuple holding arbitrary bits (images, object code...)."""
    if not isinstance(payload, (bytes, bytearray)):
        raise TypeError(f"Blob tuple data must be bytes, got {type(payload).__name__}")
    return HFTuple("Blob", key, bytes(payload))


def tuple_of(type_name: str, key: Any, data: Any) -> HFTuple:
    """Build a tuple of an arbitrary (possibly application-defined) type."""
    return HFTuple(type_name, key, data)
