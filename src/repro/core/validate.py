"""Static validation of queries before execution.

The paper's interface is deliberately restricted so that "all queries will
be computationally feasible" (contrast with G+, where some queries are
NP-hard).  Validation enforces the structural rules that restriction relies
on, and catches application mistakes that would otherwise surface as silent
empty results:

* a dereference must name a matching variable that *can* be bound by some
  earlier filter (either before the deref, or anywhere inside the same
  iterator body — a loop may bind on a later pass);
* a variable *use* pattern (``$X``) must likewise have a possible binder;
* bounded iterator counts must be positive (enforced by the AST) and below
  a sanity limit;
* iterator nesting must not exceed a configured depth ("we do not expect
  nesting to be common");
* retrieval targets must be unique enough to disambiguate result binding —
  duplicates are allowed only if they appear in the same position class,
  so we simply warn-by-error on exact duplicates with different patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from ..errors import QueryValidationError
from .ast import Deref, FilterNode, Iterate, Query, Retrieve, Select

#: Iterators deeper than this are almost certainly an application bug.
MAX_NESTING_DEPTH = 8

#: Bounded iteration counts above this are almost certainly a typo; the
#: application should use '*' (closure) instead, which the mark table makes
#: terminate regardless of graph size.
MAX_ITERATION_COUNT = 10_000


@dataclass
class ValidationReport:
    """Outcome of validation: collected problems (empty = valid)."""

    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_if_invalid(self) -> None:
        if self.problems:
            raise QueryValidationError("; ".join(self.problems))


def validate_query(query: Query, strict: bool = True) -> ValidationReport:
    """Validate ``query``; raise (when ``strict``) or report problems.

    Returns the :class:`ValidationReport` either way so callers can log
    warnings in non-strict mode.
    """
    report = ValidationReport()
    _check_nesting(query.filters, 0, report)
    _check_variables(query, report)
    _check_counts(query, report)
    if strict:
        report.raise_if_invalid()
    return report


def _check_nesting(filters: Tuple[FilterNode, ...], depth: int, report: ValidationReport) -> None:
    for node in filters:
        if isinstance(node, Iterate):
            if depth + 1 > MAX_NESTING_DEPTH:
                report.problems.append(
                    f"iterator nesting depth exceeds {MAX_NESTING_DEPTH}"
                )
                return
            _check_nesting(node.body, depth + 1, report)


def _check_counts(query: Query, report: ValidationReport) -> None:
    for node in query.walk():
        if isinstance(node, Iterate) and node.count is not None and node.count > MAX_ITERATION_COUNT:
            report.problems.append(
                f"iterator count {node.count} exceeds sanity limit {MAX_ITERATION_COUNT}"
            )


def _binders_in(filters: Tuple[FilterNode, ...]) -> Set[str]:
    bound: Set[str] = set()
    for node in filters:
        for sub in node.walk():
            if isinstance(sub, Select):
                bound |= sub.type_pattern.variables_bound()
                bound |= sub.key_pattern.variables_bound()
                bound |= sub.data_pattern.variables_bound()
            elif isinstance(sub, Retrieve):
                bound |= sub.type_pattern.variables_bound()
                bound |= sub.key_pattern.variables_bound()
    return bound


def _check_variables(query: Query, report: ValidationReport) -> None:
    """Ensure every deref / use has a plausible binder.

    A variable referenced at position p is satisfiable if a binder exists
    at any position q < p in the same (or an enclosing) sequence, or
    anywhere inside the same iterator body (bindings can be established on
    an earlier pass of the loop).
    """

    def walk_sequence(filters: Tuple[FilterNode, ...], inherited: Set[str]) -> None:
        seen = set(inherited)
        for node in filters:
            if isinstance(node, Iterate):
                # Inside a loop, anything the loop body can bind counts as
                # available everywhere within the body.
                loop_bound = _binders_in(node.body)
                walk_sequence(node.body, seen | loop_bound)
                seen |= loop_bound
            elif isinstance(node, Deref):
                if node.var not in seen:
                    report.problems.append(
                        f"dereference of variable {node.var!r} which no earlier filter can bind"
                    )
            elif isinstance(node, (Select, Retrieve)):
                used: Set[str] = set()
                if isinstance(node, Select):
                    pats = (node.type_pattern, node.key_pattern, node.data_pattern)
                else:
                    pats = (node.type_pattern, node.key_pattern)
                for pat in pats:
                    used |= pat.variables_used()
                missing = used - seen
                for name in sorted(missing):
                    report.problems.append(
                        f"use of variable {name!r} which no earlier filter can bind"
                    )
                for pat in pats:
                    seen |= pat.variables_bound()

    walk_sequence(query.filters, set())
