"""The HyperFile data model and query language (paper §2–§3).

Re-exports the public names applications use to build objects and queries.
"""

from .ast import (
    Deref,
    FilterNode,
    Iterate,
    Query,
    Retrieve,
    Select,
    closure,
    deref,
    deref_keep,
    iterate,
    retrieve,
    select,
)
from .builder import QueryBuilder
from .objects import HFObject, make_set_object, set_members
from .oid import Oid, OidAllocator
from .parser import parse_filters, parse_query
from .patterns import ANY, Bind, Literal, OneOf, Pattern, Range, Regex, Use, as_pattern
from .program import Program, compile_query
from .tuples import (
    HFTuple,
    blob_tuple,
    keyword_tuple,
    number_tuple,
    pointer_tuple,
    string_tuple,
    text_tuple,
    tuple_of,
)
from .types import DEFAULT_REGISTRY, FieldKind, TupleType, TypeRegistry
from .validate import ValidationReport, validate_query

__all__ = [
    "ANY",
    "Bind",
    "Deref",
    "FieldKind",
    "FilterNode",
    "HFObject",
    "HFTuple",
    "Iterate",
    "Literal",
    "Oid",
    "OidAllocator",
    "OneOf",
    "Pattern",
    "Program",
    "Query",
    "QueryBuilder",
    "Range",
    "Regex",
    "Retrieve",
    "Select",
    "TupleType",
    "TypeRegistry",
    "Use",
    "ValidationReport",
    "DEFAULT_REGISTRY",
    "as_pattern",
    "blob_tuple",
    "closure",
    "compile_query",
    "deref",
    "deref_keep",
    "iterate",
    "keyword_tuple",
    "make_set_object",
    "number_tuple",
    "parse_filters",
    "parse_query",
    "pointer_tuple",
    "retrieve",
    "select",
    "set_members",
    "string_tuple",
    "text_tuple",
    "tuple_of",
    "validate_query",
]
