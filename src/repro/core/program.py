"""Flattened, indexed query programs (the ``F_1 .. F_n`` form of paper §3).

The processing algorithm addresses filters by index: every object carries
``O.next`` (index of the next filter to apply) and ``O.start`` (the first
filter that processed it), and iterators are represented as a marker
``I_j^k`` sitting at the *end* of their body that redirects objects back to
index ``j``.  This module compiles the nested AST of :mod:`repro.core.ast`
into that representation.

Indices are 1-based throughout, matching the paper (``O.start = 1`` for
objects of the initial set; the query is done when ``O.next > n``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .ast import Deref, FilterNode, Iterate, Query, Retrieve, Select
from .patterns import Pattern


class Op:
    """Base class for flattened filter operations."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index


class SelectOp(Op):
    """Flattened :class:`~repro.core.ast.Select`."""

    __slots__ = ("type_pattern", "key_pattern", "data_pattern")

    def __init__(self, index: int, type_pattern: Pattern, key_pattern: Pattern, data_pattern: Pattern) -> None:
        super().__init__(index)
        self.type_pattern = type_pattern
        self.key_pattern = key_pattern
        self.data_pattern = data_pattern

    def __repr__(self) -> str:
        return f"F{self.index}:Select({self.type_pattern}, {self.key_pattern}, {self.data_pattern})"


class RetrieveOp(Op):
    """Flattened :class:`~repro.core.ast.Retrieve`."""

    __slots__ = ("type_pattern", "key_pattern", "target")

    def __init__(self, index: int, type_pattern: Pattern, key_pattern: Pattern, target: str) -> None:
        super().__init__(index)
        self.type_pattern = type_pattern
        self.key_pattern = key_pattern
        self.target = target

    def __repr__(self) -> str:
        return f"F{self.index}:Retrieve({self.type_pattern}, {self.key_pattern}, ->{self.target})"


class DerefOp(Op):
    """Flattened :class:`~repro.core.ast.Deref`."""

    __slots__ = ("var", "keep_source")

    def __init__(self, index: int, var: str, keep_source: bool) -> None:
        super().__init__(index)
        self.var = var
        self.keep_source = keep_source

    def __repr__(self) -> str:
        arrow = "^^" if self.keep_source else "^"
        return f"F{self.index}:Deref({arrow}{self.var})"


class LoopOp(Op):
    """The iterator marker ``I_j^k``: redirects objects back to index ``start``.

    ``count`` of ``None`` encodes ``*`` (think of it as infinity, per the
    paper's footnote: "O.iter# >= k is not tested if k = *").
    """

    __slots__ = ("start", "count")

    def __init__(self, index: int, start: int, count: Optional[int]) -> None:
        super().__init__(index)
        self.start = start
        self.count = count

    @property
    def is_closure(self) -> bool:
        return self.count is None

    def __repr__(self) -> str:
        k = "*" if self.count is None else str(self.count)
        return f"F{self.index}:Loop(start={self.start}, k={k})"


class Program:
    """An executable, flattened query.

    Attributes
    ----------
    source, result:
        Set names carried over from the :class:`~repro.core.ast.Query`.
    ops:
        The flattened operations; ``ops[i - 1]`` is ``F_i``.
    enclosing:
        For each index ``i`` (1-based), the indices of the :class:`LoopOp`
        markers whose bodies contain position ``i``, outermost first.  The
        engine uses this to maintain per-object iteration-number stacks in
        the presence of nested iterators (paper §3.1).
    """

    __slots__ = ("source", "result", "ops", "enclosing", "_innermost", "_loop_counts")

    def __init__(self, source: str, result: str, ops: List[Op], enclosing: List[Tuple[int, ...]]) -> None:
        self.source = source
        self.result = result
        self.ops = tuple(ops)
        self.enclosing = tuple(enclosing)
        # Cache of innermost enclosing loop per position (0 = none).
        self._innermost = tuple(chain[-1] if chain else 0 for chain in self.enclosing)
        self._loop_counts = {op.index: op.count for op in self.ops if isinstance(op, LoopOp)}

    @property
    def size(self) -> int:
        """The paper's ``Q.size``: the number ``n`` of filters."""
        return len(self.ops)

    def op_at(self, index: int) -> Op:
        """Return ``F_index`` (1-based)."""
        return self.ops[index - 1]

    def innermost_loop(self, index: int) -> int:
        """Index of the innermost LoopOp enclosing position ``index`` (0 = none)."""
        return self._innermost[index - 1]

    def loops_enclosing(self, index: int) -> Tuple[int, ...]:
        """All LoopOp indices enclosing ``index``, outermost first."""
        return self.enclosing[index - 1]

    def loop_counts(self) -> Dict[int, Optional[int]]:
        """Map each LoopOp marker index to its bound (None for closures).

        Used to normalise per-object iteration counts: closure counts are
        never consulted, bounded counts saturate at k (see
        :func:`repro.engine.items.bump_iters`).
        """
        return self._loop_counts

    def wire_size(self) -> int:
        """Approximate encoded size of ``Q.body`` in bytes.

        The paper reports its experiment queries encode to roughly 40
        bytes; this estimate feeds the metrics layer, not correctness.
        """
        total = 8  # source/result set handles
        for op in self.ops:
            if isinstance(op, SelectOp):
                total += 2 + _pattern_size(op.type_pattern) + _pattern_size(op.key_pattern) + _pattern_size(op.data_pattern)
            elif isinstance(op, RetrieveOp):
                total += 2 + _pattern_size(op.type_pattern) + _pattern_size(op.key_pattern) + len(op.target)
            elif isinstance(op, DerefOp):
                total += 2 + len(op.var)
            else:
                total += 4
        return total

    def __repr__(self) -> str:
        body = "; ".join(repr(op) for op in self.ops)
        return f"Program({self.source} [{body}] -> {self.result})"


def compile_query(query: Query) -> Program:
    """Flatten a nested :class:`~repro.core.ast.Query` into a :class:`Program`.

    An iterator compiles to its body followed by a :class:`LoopOp` whose
    ``start`` is the index of the first body operation — exactly the layout
    the worked example in paper §3.1 uses (``[F1 F2]^3`` becomes
    ``F1 F2 I_1^3``).
    """
    ops: List[Op] = []
    enclosing: List[Tuple[int, ...]] = []
    placeholder_counter = itertools.count(start=1)

    def emit(node: FilterNode, loop_chain: Tuple[int, ...]) -> None:
        index = len(ops) + 1
        if isinstance(node, Select):
            ops.append(SelectOp(index, node.type_pattern, node.key_pattern, node.data_pattern))
            enclosing.append(loop_chain)
        elif isinstance(node, Retrieve):
            ops.append(RetrieveOp(index, node.type_pattern, node.key_pattern, node.target))
            enclosing.append(loop_chain)
        elif isinstance(node, Deref):
            ops.append(DerefOp(index, node.var, node.keep_source))
            enclosing.append(loop_chain)
        elif isinstance(node, Iterate):
            start = len(ops) + 1
            # Reserve the loop's own slot in the chain for its body; the
            # marker index is only known after the body is emitted, so we
            # patch the chains afterwards using a unique placeholder.
            placeholder = -next(placeholder_counter)
            for child in node.body:
                emit(child, loop_chain + (placeholder,))
            marker_index = len(ops) + 1
            ops.append(LoopOp(marker_index, start, node.count))
            enclosing.append(loop_chain + (placeholder,))
            # Patch placeholder -> real marker index.
            for i in range(start - 1, len(ops)):
                chain = enclosing[i]
                if placeholder in chain:
                    enclosing[i] = tuple(marker_index if c == placeholder else c for c in chain)
        else:
            raise TypeError(f"unknown filter node {type(node).__name__}")

    for node in query.filters:
        emit(node, ())
    return Program(query.source, query.result, ops, enclosing)


def _pattern_size(pattern: Pattern) -> int:
    text = str(pattern)
    return min(len(text), 64) + 1
