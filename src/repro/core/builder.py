"""Fluent builder for queries, for applications that prefer a Python API.

The textual language (:mod:`repro.core.parser`) is what the paper presents;
this builder produces identical :class:`~repro.core.ast.Query` values while
reading naturally in application code::

    query = (
        QueryBuilder("S")
        .begin_loop()
        .select("Pointer", "Reference", "?X")
        .deref_keep("X")
        .end_loop()              # '*' — transitive closure
        .select("Keyword", "Distributed", "?")
        .into("T")
    )
"""

from __future__ import annotations

from typing import List, Optional

from .ast import Deref, FilterNode, Iterate, Query, Retrieve, Select
from .patterns import as_pattern


class QueryBuilder:
    """Accumulates filters, supporting nested iterator scopes.

    Iterator scopes opened with :meth:`begin_loop` must be closed with
    :meth:`end_loop` before :meth:`into` is called; :meth:`into` raises if
    a scope is left open (catching the mistake at build time rather than
    at the server).
    """

    def __init__(self, source: str) -> None:
        if not source:
            raise ValueError("query source set name must be non-empty")
        self._source = source
        # Stack of filter lists: the bottom is the top-level pipeline, one
        # extra level per open iterator scope.
        self._scopes: List[List[FilterNode]] = [[]]

    # -- filters -----------------------------------------------------------

    def select(self, type_pattern: object, key_pattern: object = "?", data_pattern: object = "?") -> "QueryBuilder":
        """Append a selection filter ``(type, key, data)``."""
        self._current().append(
            Select(as_pattern(type_pattern), as_pattern(key_pattern), as_pattern(data_pattern))
        )
        return self

    def deref(self, var: str) -> "QueryBuilder":
        """Append ``^X``: follow pointers bound to ``var``, dropping the source."""
        self._current().append(Deref(var, keep_source=False))
        return self

    def deref_keep(self, var: str) -> "QueryBuilder":
        """Append ``^^X``: follow pointers bound to ``var``, keeping the source."""
        self._current().append(Deref(var, keep_source=True))
        return self

    def retrieve(self, type_pattern: object, key_pattern: object, target: str) -> "QueryBuilder":
        """Append ``(type, key, ->target)``: ship matching data fields back."""
        self._current().append(Retrieve(as_pattern(type_pattern), as_pattern(key_pattern), target))
        return self

    # -- iterator scopes -----------------------------------------------------

    def begin_loop(self) -> "QueryBuilder":
        """Open an iterator scope (``[``)."""
        self._scopes.append([])
        return self

    def end_loop(self, count: Optional[int] = None) -> "QueryBuilder":
        """Close the innermost iterator scope.

        ``count=None`` produces ``[...]*`` (transitive closure);
        ``count=k`` produces ``[...]^k``.
        """
        if len(self._scopes) == 1:
            raise ValueError("end_loop() without matching begin_loop()")
        body = self._scopes.pop()
        self._current().append(Iterate(tuple(body), count))
        return self

    def follow(self, pointer_key: object, var: str = "X", count: Optional[int] = None, keep_source: bool = True) -> "QueryBuilder":
        """Shorthand for the paper's canonical traversal idiom.

        Appends ``[ (Pointer, pointer_key, ?var) | ^^var ]^count`` (or
        ``*`` when count is None) — i.e. "follow this category of pointer
        for up to ``count`` levels".
        """
        body = (
            Select(as_pattern("Pointer"), as_pattern(pointer_key), as_pattern(f"?{var}")),
            Deref(var, keep_source=keep_source),
        )
        self._current().append(Iterate(body, count))
        return self

    # -- completion ------------------------------------------------------------

    def into(self, result: str = "_") -> Query:
        """Finish the build and return the :class:`~repro.core.ast.Query`."""
        if len(self._scopes) != 1:
            raise ValueError(f"{len(self._scopes) - 1} iterator scope(s) left open")
        if not self._scopes[0]:
            raise ValueError("query has no filters")
        return Query(self._source, tuple(self._scopes[0]), result)

    # -- internals ---------------------------------------------------------------

    def _current(self) -> List[FilterNode]:
        return self._scopes[-1]
