"""Distributed termination detection (paper §4)."""

from .base import TerminationStrategy, make_strategy
from .dijkstra_scholten import DijkstraScholtenStrategy, DSState
from .weights import WeightedState, WeightedStrategy

__all__ = [
    "DijkstraScholtenStrategy",
    "DSState",
    "TerminationStrategy",
    "WeightedState",
    "WeightedStrategy",
    "make_strategy",
]
