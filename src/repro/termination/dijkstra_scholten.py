"""Dijkstra–Scholten diffusing-computation termination detection.

Provided as the comparator for ablation A3 (DESIGN.md): the weighted
scheme piggybacks credit on messages the query sends anyway, whereas
Dijkstra–Scholten sends an explicit acknowledgement for *every* work
message, building a dynamic spanning tree of the computation:

* The originator is the root of the tree and is always *engaged*.
* When a passive site receives work, it becomes engaged and records the
  sender as its **parent**; every other work message is acknowledged
  immediately.
* Each site counts its unacknowledged outgoing work messages (its
  **deficit**).
* A non-root site *disengages* — acknowledges its parent — once it is
  passive (working set drained) with deficit 0.
* The root detects termination when it is passive with deficit 0.

The ack-per-message overhead is exactly what the bench measures against
the weighted scheme's zero extra messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import TerminationProtocolError
from .base import ControlOut, TerminationStrategy

ACK = "ds-ack"


@dataclass
class DSState:
    """Per-(site, query) Dijkstra–Scholten bookkeeping."""

    site: str
    is_originator: bool
    engaged: bool = False
    parent: Optional[str] = None
    deficit: int = 0       #: sent work messages not yet acknowledged
    acks_sent: int = 0     #: control-message overhead counter


class DijkstraScholtenStrategy(TerminationStrategy):
    """Explicit-ack termination detection."""

    name = "dijkstra-scholten"

    def new_state(self, site: str, is_originator: bool) -> DSState:
        return DSState(site=site, is_originator=is_originator, engaged=is_originator)

    def on_start(self, state: DSState) -> None:
        state.engaged = True

    def on_send_work(self, state: DSState) -> Dict[str, Any]:
        state.deficit += 1
        return {}

    def on_recv_work(self, state: DSState, attach: Dict[str, Any], src: str, busy: bool) -> List[ControlOut]:
        if not state.engaged:
            state.engaged = True
            state.parent = src
            return []
        # Already in the tree: acknowledge immediately.
        state.acks_sent += 1
        return [(src, ACK, None)]

    def on_drain(self, state: DSState) -> Tuple[Dict[str, Any], List[ControlOut]]:
        return {}, self._maybe_disengage(state, busy=False)

    def on_originator_drain(self, state: DSState) -> None:
        # The root never disengages; termination is checked directly.
        pass

    def on_result(self, state: DSState, attach: Dict[str, Any]) -> None:
        # Results carry no detector state in this scheme.
        pass

    def on_control(self, state: DSState, kind: str, payload: Any, src: str, busy: bool) -> List[ControlOut]:
        if kind != ACK:
            raise TerminationProtocolError(f"unexpected control kind {kind!r}")
        if state.deficit <= 0:
            raise TerminationProtocolError(
                f"site {state.site} received an ack with deficit {state.deficit}"
            )
        state.deficit -= 1
        return self._maybe_disengage(state, busy)

    def on_send_failed(self, state: DSState, attach: Dict[str, Any], busy: bool) -> List[ControlOut]:
        if state.deficit <= 0:
            raise TerminationProtocolError(
                f"site {state.site} got an undeliverable bounce with deficit {state.deficit}"
            )
        # The child never existed: erase its edge and disengage if that
        # was the last thing keeping this site in the tree.
        state.deficit -= 1
        return self._maybe_disengage(state, busy)

    def on_deadline(self, state: DSState) -> None:
        # Forced termination: pretend every outstanding edge was acked.
        # Late acks for the query are swallowed by the node (context done),
        # so the deficit cannot go negative afterwards.
        state.deficit = 0

    def is_terminated(self, state: DSState, busy: bool) -> bool:
        if not state.is_originator:
            return False
        return not busy and state.deficit == 0

    def _maybe_disengage(self, state: DSState, busy: bool) -> List[ControlOut]:
        if state.is_originator or not state.engaged:
            return []
        if busy or state.deficit > 0:
            return []
        parent = state.parent
        if parent is None:
            raise TerminationProtocolError(f"engaged site {state.site} has no parent")
        state.engaged = False
        state.parent = None
        state.acks_sent += 1
        return [(parent, ACK, None)]
