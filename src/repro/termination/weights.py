"""The weighted-messages (credit-recovery) termination detector.

This is the algorithm the paper's prototype implements ("One that is
particularly appropriate to HyperFile is the weighted messages algorithm
[9, 13]"), due independently to Huang and to Mattern.  The idea:

* The originator starts with credit **1**.
* Every work message carries half of the sending site's current credit
  (the sender keeps the other half).
* A site receiving work adds the incoming credit to its own.
* When a site's working set drains, it returns its entire credit to the
  originator, piggybacked on the result message it sends anyway — so in
  the common case the detector adds **zero** extra messages.
* The originator declares termination when it is idle and the recovered
  credit sums to exactly 1.

Credits are exact :class:`fractions.Fraction` values, so conservation is
checkable: at every instant, (credit held at sites) + (credit in flight)
+ (credit recovered) == 1.  Violations raise
:class:`~repro.errors.TerminationProtocolError` instead of silently
mis-detecting.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Tuple

from ..errors import TerminationProtocolError
from .base import ControlOut, TerminationStrategy

ONE = Fraction(1)
ZERO = Fraction(0)
HALF = Fraction(1, 2)


@dataclass
class WeightedState:
    """Per-(site, query) credit ledger."""

    site: str
    is_originator: bool
    credit: Fraction = ZERO      #: credit currently held by this site
    recovered: Fraction = ZERO   #: originator only: credit returned so far
    splits: int = 0              #: number of times this site split its credit


class WeightedStrategy(TerminationStrategy):
    """Credit-recovery termination (the paper's choice)."""

    name = "weighted"

    def new_state(self, site: str, is_originator: bool) -> WeightedState:
        return WeightedState(site=site, is_originator=is_originator)

    def on_start(self, state: WeightedState) -> None:
        state.credit = ONE

    def on_send_work(self, state: WeightedState) -> Dict[str, Any]:
        if state.credit <= ZERO:
            raise TerminationProtocolError(
                f"site {state.site} sending work with no credit to split"
            )
        half = state.credit * HALF
        state.credit -= half
        state.splits += 1
        return {"credit": half}

    def on_recv_work(self, state: WeightedState, attach: Dict[str, Any], src: str, busy: bool) -> List[ControlOut]:
        credit = attach.get("credit")
        if not isinstance(credit, Fraction) or credit <= ZERO:
            raise TerminationProtocolError(
                f"work message from {src} carried invalid credit {credit!r}"
            )
        state.credit += credit
        return []

    def on_drain(self, state: WeightedState) -> Tuple[Dict[str, Any], List[ControlOut]]:
        returned = state.credit
        state.credit = ZERO
        return {"credit": returned}, []

    def on_originator_drain(self, state: WeightedState) -> None:
        state.recovered += state.credit
        state.credit = ZERO

    def on_result(self, state: WeightedState, attach: Dict[str, Any]) -> None:
        credit = attach.get("credit", ZERO)
        if not isinstance(credit, Fraction) or credit < ZERO:
            raise TerminationProtocolError(f"result message carried invalid credit {credit!r}")
        state.recovered += credit
        if state.recovered > ONE:
            raise TerminationProtocolError(
                f"credit over-recovered: {state.recovered} > 1 (duplication bug)"
            )

    def on_control(self, state: WeightedState, kind: str, payload: Any, src: str, busy: bool) -> List[ControlOut]:
        raise TerminationProtocolError(
            f"weighted strategy received unexpected control message {kind!r}"
        )

    def on_send_failed(self, state: WeightedState, attach: Dict[str, Any], busy: bool) -> List[ControlOut]:
        credit = attach.get("credit")
        if not isinstance(credit, Fraction) or credit <= ZERO:
            raise TerminationProtocolError(
                f"undeliverable work message carried invalid credit {credit!r}"
            )
        # Take the in-flight credit back; the node's drain-if-idle will
        # forward it to the originator if this site is already passive.
        state.credit += credit
        return []

    def on_deadline(self, state: WeightedState) -> None:
        # Forced termination: whatever credit is still held at other
        # sites or in flight is written off as recovered.  Late result
        # messages for the query are ignored by the node (the context is
        # marked done), so over-recovery cannot trip the conservation
        # check afterwards.
        state.credit = ZERO
        state.recovered = ONE

    def is_terminated(self, state: WeightedState, busy: bool) -> bool:
        if not state.is_originator:
            return False
        return not busy and state.credit == ZERO and state.recovered == ONE
