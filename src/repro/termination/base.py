"""Distributed termination detection — strategy interface (paper §4).

"With only a single site, a query terminates when its working set is
empty.  With multiple sites, however, all of the working sets must be
empty.  Determining when this has happened is an instance of the
Distributed Termination Problem."

The paper implements the *weighted messages* algorithm
(:mod:`repro.termination.weights`); we additionally provide
Dijkstra–Scholten (:mod:`repro.termination.dijkstra_scholten`) so the
ablation bench can compare control-message overhead.

A strategy is a set of callbacks the server node invokes at the relevant
protocol points.  Strategies are stateless; all per-query, per-site state
lives in the object returned by :meth:`TerminationStrategy.new_state`, so
one strategy instance can serve an entire cluster.

Callback contract (all ``busy`` flags mean "this site still has work
queued for this query"):

* ``on_start`` — at the originator, when the query context is created.
* ``on_send_work`` — a :class:`~repro.net.messages.DerefRequest` is about
  to leave this site; returns the ``term`` attachment to embed.
* ``on_recv_work`` — a DerefRequest arrived; may emit control messages.
* ``on_drain`` — this site's working set just emptied and it is about to
  ship a :class:`~repro.net.messages.ResultBatch`; returns the ``term``
  attachment plus any control messages.
* ``on_originator_drain`` — the originator's own working set emptied
  (it ships no result message to itself).
* ``on_result`` — the originator ingested a ResultBatch's attachment.
* ``on_control`` — a :class:`~repro.net.messages.ControlMessage` arrived.
* ``is_terminated`` — asked at the originator after every event.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Tuple

#: (destination site, control kind, payload) emitted by a strategy.
ControlOut = Tuple[str, str, Any]


class TerminationStrategy(ABC):
    """Pluggable distributed-termination detector."""

    #: Registry/config name (e.g. ``"weighted"``).
    name: str = "abstract"

    @abstractmethod
    def new_state(self, site: str, is_originator: bool) -> Any:
        """Create this strategy's per-(site, query) state."""

    @abstractmethod
    def on_start(self, state: Any) -> None: ...

    @abstractmethod
    def on_send_work(self, state: Any) -> Dict[str, Any]: ...

    @abstractmethod
    def on_recv_work(self, state: Any, attach: Dict[str, Any], src: str, busy: bool) -> List[ControlOut]: ...

    @abstractmethod
    def on_drain(self, state: Any) -> Tuple[Dict[str, Any], List[ControlOut]]: ...

    @abstractmethod
    def on_originator_drain(self, state: Any) -> None: ...

    @abstractmethod
    def on_result(self, state: Any, attach: Dict[str, Any]) -> None: ...

    @abstractmethod
    def on_control(self, state: Any, kind: str, payload: Any, src: str, busy: bool) -> List[ControlOut]: ...

    @abstractmethod
    def on_send_failed(self, state: Any, attach: Dict[str, Any], busy: bool) -> List[ControlOut]:
        """A work message this site sent was returned undeliverable.

        The detector must re-absorb whatever it attached (credit, deficit)
        so the query can still terminate — with partial results — after a
        mid-query site failure."""

    def on_deadline(self, state: Any) -> None:
        """The originator's query deadline expired: write off all
        outstanding detector state (credit in flight, unacked edges) so
        the ledger is consistent with forced termination.

        Only called on the originator's state.  After this,
        :meth:`is_terminated` must hold for an idle originator.
        """

    @abstractmethod
    def is_terminated(self, state: Any, busy: bool) -> bool: ...


def make_strategy(name: str) -> TerminationStrategy:
    """Instantiate a termination strategy by configuration name."""
    from .dijkstra_scholten import DijkstraScholtenStrategy
    from .weights import WeightedStrategy

    registry = {
        "weighted": WeightedStrategy,
        "dijkstra-scholten": DijkstraScholtenStrategy,
    }
    try:
        return registry[name]()
    except KeyError:
        raise ValueError(
            f"unknown termination strategy {name!r}; choose from {sorted(registry)}"
        ) from None
