"""The epoch-numbered membership view every component routes against."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Site statuses.  ``up`` sites take new placements and new work;
#: ``leaving`` sites finish work already in hand but receive nothing
#: new (their data has been rebalanced away, the local copies linger
#: until the site drains); ``departed`` sites are gone for good.
UP = "up"
LEAVING = "leaving"
DEPARTED = "departed"

_STATUSES = (UP, LEAVING, DEPARTED)


@dataclass(frozen=True)
class MembershipView:
    """An immutable snapshot of the cluster's membership.

    ``epoch`` increments on every change, so two views are ordered and a
    component holding a stale one can tell.  ``statuses`` is a sorted
    ``(site, status)`` table — frozen, hashable, and cheap to ship (the
    :class:`~repro.net.messages.ViewChange` frame carries it verbatim).
    """

    epoch: int
    statuses: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        for site, status in self.statuses:
            if status not in _STATUSES:
                raise ValueError(f"unknown membership status {status!r} for {site!r}")
        if len({site for site, _ in self.statuses}) != len(self.statuses):
            raise ValueError("a site appears twice in the membership view")

    @classmethod
    def initial(cls, sites) -> "MembershipView":
        """Epoch-0 view: every founding site up."""
        return cls(0, tuple(sorted((site, UP) for site in sites)))

    def status_of(self, site: str) -> str:
        """``site``'s status; unknown sites read as departed (they are
        not members, so nothing may be routed to them)."""
        for name, status in self.statuses:
            if name == site:
                return status
        return DEPARTED

    @property
    def active(self) -> Tuple[str, ...]:
        """Sites eligible for placements and new work (status ``up``)."""
        return tuple(site for site, status in self.statuses if status == UP)

    @property
    def leaving(self) -> Tuple[str, ...]:
        return tuple(site for site, status in self.statuses if status == LEAVING)

    @property
    def departed(self) -> Tuple[str, ...]:
        return tuple(site for site, status in self.statuses if status == DEPARTED)

    @property
    def members(self) -> Tuple[str, ...]:
        """Every site the view knows about, whatever its status."""
        return tuple(site for site, _ in self.statuses)

    def as_dict(self) -> Dict[str, str]:
        return dict(self.statuses)

    def with_status(self, site: str, status: str) -> "MembershipView":
        """The successor view in which ``site`` has ``status``."""
        if status not in _STATUSES:
            raise ValueError(f"unknown membership status {status!r}")
        table = self.as_dict()
        table[site] = status
        return MembershipView(self.epoch + 1, tuple(sorted(table.items())))

    def __str__(self) -> str:
        body = ", ".join(f"{site}={status}" for site, status in self.statuses)
        return f"view#{self.epoch}({body})"
