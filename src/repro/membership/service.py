"""The authoritative membership view + the gossip failure detector.

One :class:`MembershipService` lives on each cluster object.  All view
transitions go through it — administrative (``join`` / ``leave_begin`` /
``leave_finalize`` / ``fail``) and detector-driven (a heartbeat counter
stalling past ``fail_after`` rounds) — so listeners observe a single
totally-ordered sequence of views.

The failure detector is deliberately *evidence-based*: the merged
heartbeat counter table advances only through **delivered**
:class:`~repro.net.messages.Heartbeat` frames (the cluster wires each
node's heartbeat handler to :meth:`observe_heartbeat`).  A site that is
partitioned, crashed, or silenced by the fault plan stops advancing in
the table and is eventually declared failed — the detector never peeks
at the network's availability table.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import MembershipError
from .config import MembershipConfig
from .view import DEPARTED, LEAVING, UP, MembershipView

#: Notified as (old_view, new_view, reason) after every view change.
#: Reasons: "join", "leave", "depart", "fail".
ViewListener = Callable[[MembershipView, MembershipView, str], None]


class MembershipService:
    """Holds the view, orders its transitions, runs the detector."""

    def __init__(self, config: MembershipConfig, sites: Iterable[str]) -> None:
        self.config = config
        self.view = MembershipView.initial(sites)
        self._listeners: List[ViewListener] = []
        self._rng = random.Random(config.seed)
        #: Per-site self-incremented heartbeat counters (what each site
        #: would gossip); the cluster ticks these for live sites only.
        self._self_counters: Dict[str, int] = {s: 0 for s in self.view.members}
        #: The merged table: advanced *only* by delivered frames.
        self._merged: Dict[str, int] = dict(self._self_counters)
        #: Consecutive detector rounds each site's merged counter stalled.
        self._stalled_rounds: Dict[str, int] = {}
        #: View-change counters (telemetry / tests).
        self.joins = 0
        self.leaves = 0
        self.failures = 0

    # -- wiring ----------------------------------------------------------

    def add_listener(self, listener: ViewListener) -> None:
        self._listeners.append(listener)

    def _transition(self, new_view: MembershipView, reason: str) -> MembershipView:
        old, self.view = self.view, new_view
        for listener in self._listeners:
            listener(old, new_view, reason)
        return new_view

    # -- administrative transitions --------------------------------------

    def join(self, site: str) -> MembershipView:
        """Admit ``site`` as an up member (new site, or a rejoin)."""
        if self.view.status_of(site) == UP and site in self.view.members:
            raise MembershipError(site, "already a member")
        self._self_counters[site] = 0
        self._merged[site] = 0
        self._stalled_rounds.pop(site, None)
        self.joins += 1
        return self._transition(self.view.with_status(site, UP), "join")

    def leave_begin(self, site: str) -> MembershipView:
        """Start a graceful leave: the site drains, taking nothing new."""
        self._require_up(site)
        if len(self.view.active) <= 1:
            raise MembershipError(site, "cannot leave: it is the last active site")
        self.leaves += 1
        return self._transition(self.view.with_status(site, LEAVING), "leave")

    def leave_finalize(self, site: str) -> MembershipView:
        """Complete a graceful leave once the site has drained."""
        if self.view.status_of(site) != LEAVING:
            raise MembershipError(site, "not in the leaving state")
        self._forget(site)
        return self._transition(self.view.with_status(site, DEPARTED), "depart")

    def fail(self, site: str) -> MembershipView:
        """Declare ``site`` permanently crashed (admin or detector)."""
        if self.view.status_of(site) == DEPARTED:
            raise MembershipError(site, "already departed")
        if len(self.view.active) <= 1 and self.view.status_of(site) == UP:
            raise MembershipError(site, "cannot fail: it is the last active site")
        self._forget(site)
        self.failures += 1
        return self._transition(self.view.with_status(site, DEPARTED), "fail")

    def _require_up(self, site: str) -> None:
        status = self.view.status_of(site)
        if status != UP:
            raise MembershipError(site, f"status is {status!r}, not up")

    def _forget(self, site: str) -> None:
        self._self_counters.pop(site, None)
        self._merged.pop(site, None)
        self._stalled_rounds.pop(site, None)

    # -- gossip / failure detection --------------------------------------

    def beat(self, site: str) -> Tuple[Tuple[str, int], ...]:
        """One site's heartbeat round: tick its own counter, return the
        counter table it would gossip (its self counter merged over its
        view of everyone else)."""
        self._self_counters[site] = self._self_counters.get(site, 0) + 1
        table = dict(self._merged)
        table[site] = self._self_counters[site]
        return tuple(sorted(table.items()))

    def gossip_peers(self, site: str) -> List[str]:
        """Seeded choice of up to ``fanout`` live peers for one round."""
        peers = [s for s in self.view.active if s != site]
        if len(peers) <= self.config.fanout:
            return peers
        return self._rng.sample(peers, self.config.fanout)

    def observe_heartbeat(self, counters: Iterable[Tuple[str, int]]) -> None:
        """Merge a delivered frame's counter table (element-wise max)."""
        for site, count in counters:
            if site in self._merged and count > self._merged[site]:
                self._merged[site] = count
                self._stalled_rounds[site] = 0

    def detect(self) -> List[str]:
        """One detector round: return up members whose merged counter has
        now stalled for ``fail_after`` consecutive rounds.  The caller
        (the cluster's heartbeat pump) is responsible for acting —
        declaring the failure is a view transition it must drive so
        rebalancing and routing react atomically."""
        active = self.view.active
        if len(active) <= 1:
            # A lone survivor has no peers to hear from; its silence is
            # not evidence of anything.
            self._stalled_rounds.clear()
            return []
        suspects: List[str] = []
        for site in active:
            stalled = self._stalled_rounds.get(site, 0) + 1
            self._stalled_rounds[site] = stalled
            if stalled > self.config.fail_after:
                suspects.append(site)
        return suspects

    def stalled(self) -> List[str]:
        """Up members with at least one stalled round (pump arming)."""
        return [s for s in self.view.active if self._stalled_rounds.get(s, 0) > 0]

    def suspicious(self) -> List[str]:
        """Up members stalled for two or more rounds.  Healthy members
        oscillate between 0 and 1 (the round's frames are judged before
        they are delivered), so >=2 is the earliest real signal — the
        pump keeps ticking while any member shows it."""
        return [s for s in self.view.active if self._stalled_rounds.get(s, 0) >= 2]

    def status_of(self, site: str) -> str:
        return self.view.status_of(site)

    def __repr__(self) -> str:
        return f"MembershipService({self.view})"
