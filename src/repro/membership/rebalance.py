"""Ring rebalancing: re-place exactly what a view change displaced.

On every membership transition the :class:`Rebalancer` recomputes each
replicated object's placement against the new active site set and moves
only the objects whose placement actually changed — which, with the
rendezvous-hashed :class:`~repro.replication.policy.RingPlacement`, is
the minimum the change dictates (a join pulls ~1/n of the backups onto
the new site; a leave or crash touches only the departing site's
holdings).  All data movement goes through the same store/forwarding/
directory objects the :class:`~repro.replication.ReplicationManager`
maintains, and every touched store fires the manager's epoch listeners,
so the PR 4/5 cache- and directory-invalidation machinery reacts to a
membership change exactly as it reacts to a write.

Two orderings keep in-flight queries correct while the ring moves:

* **install-before-record** — a new holder's copy is written before the
  directory lists it, so no route can target a holder without data;
* **deferred removal** — a displaced copy at a still-serving site is
  only deleted once that site is idle (the cluster supplies the idle
  predicate to :meth:`flush_removals`).  Work already admitted against
  the local copy finishes against it; routing ignores the lingering
  copy because the directory — not store contents — is the routing
  authority.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.oid import Oid
from ..naming.directory import ForwardingTable
from ..replication.manager import ReplicationManager
from ..replication.policy import RingPlacement
from ..storage.memstore import MemStore
from .service import MembershipService
from .view import DEPARTED, UP


@dataclass
class RebalanceReport:
    """What one rebalancing pass did (telemetry + test assertions)."""

    epoch: int
    reason: str
    #: Objects whose holder list changed.
    moved: int = 0
    #: Objects whose *primary* changed (leave/crash of a primary).
    primaries_moved: int = 0
    #: Fresh copies written to new holders.
    copies_installed: int = 0
    #: Displaced copies scheduled for (possibly deferred) deletion.
    removals_scheduled: int = 0
    #: Objects with no reachable copy left (every holder departed).
    lost: int = 0
    #: Oid keys of the lost objects, for postmortems.
    lost_keys: List[Tuple[str, int]] = field(default_factory=list)


class Rebalancer:
    """Moves/re-replicates the objects a view change displaced."""

    def __init__(
        self,
        manager: Optional[ReplicationManager],
        stores: Dict[str, MemStore],
        forwarding: Dict[str, ForwardingTable],
        service: MembershipService,
    ) -> None:
        self.manager = manager
        self.stores = stores
        self.forwarding = forwarding
        self.service = service
        #: Displaced copies awaiting deletion: (site, oid).  Emptied by
        #: :meth:`flush_removals` when the owning site is idle.
        self.pending_removals: List[Tuple[str, Oid]] = []
        self.last_report: Optional[RebalanceReport] = None

    # ------------------------------------------------------------------

    def rebalance(self, reason: str) -> RebalanceReport:
        """One full pass against the service's *current* view."""
        view = self.service.view
        active = [s for s in self.stores if view.status_of(s) == UP]
        report = RebalanceReport(epoch=view.epoch, reason=reason)
        if self.manager is not None and self.manager.config.enabled:
            self._rebalance_replicated(view, active, report)
        else:
            self._rebalance_unreplicated(view, active, report)
        self.last_report = report
        return report

    def _rebalance_replicated(self, view, active: List[str], report) -> None:
        manager = self.manager
        assert manager is not None
        directory = manager.directory
        k_eff = min(manager.config.k, len(active)) if active else 0
        oid_map = self._reachable_oids(view)
        for key, entry in list(directory.entries()):
            current = tuple(entry.sites)
            reachable = [s for s in current if view.status_of(s) != DEPARTED]
            oid = oid_map.get(key)
            if oid is None or not reachable or k_eff == 0:
                report.lost += 1
                report.lost_keys.append(key)
                continue
            live = [s for s in current if view.status_of(s) == UP]
            # Primary continuity: a live primary keeps authority (joins
            # and backup changes never migrate primaries); a displaced
            # primary hands over to a live backup that already has the
            # data, and only when no holder survives does the policy
            # pick a fresh site.
            if current[0] in live:
                anchor: Optional[str] = current[0]
            elif live:
                anchor = live[0]
            else:
                anchor = None
            desired = self._placement(manager, oid, anchor, active, k_eff)
            if desired == current:
                continue
            source = next((s for s in current if view.status_of(s) == UP), reachable[0])
            obj = self.stores[source].get(oid)
            for site in desired:
                if not self.stores[site].contains(oid):
                    self.stores[site].put(obj)
                    manager.copies_installed += 1
                    report.copies_installed += 1
                    manager._announce(site)
            for site in current:
                if site in desired or view.status_of(site) == DEPARTED:
                    continue
                # The copy is displaced but may still be serving already
                # admitted work; route away now, delete at idle.
                self.forwarding[site].record(oid, desired[0])
                self.pending_removals.append((site, oid))
                report.removals_scheduled += 1
            for site in desired:
                self.forwarding[site].drop(oid)
            birth = oid.birth_site
            if (
                birth in self.forwarding
                and birth not in desired
                and view.status_of(birth) != DEPARTED
            ):
                self.forwarding[birth].record(oid, desired[0])
            directory.record(oid, desired)
            directory.bump_version(oid)
            report.moved += 1
            if desired[0] != current[0]:
                report.primaries_moved += 1

    def _rebalance_unreplicated(self, view, active: List[str], report) -> None:
        """k=1: a graceful leave migrates the leaving sites' objects; a
        crash loses theirs (there is no second copy to restore from)."""
        from ..naming.names import migrate_object

        policy = RingPlacement()
        for site in list(self.stores):
            status = view.status_of(site)
            if status == UP:
                continue
            store = self.stores[site]
            for oid in list(store.oids()):
                if status == DEPARTED:
                    report.lost += 1
                    report.lost_keys.append(oid.key())
                    continue
                if not active:
                    report.lost += 1
                    report.lost_keys.append(oid.key())
                    continue
                target = policy.place(oid, active, 1)[0]
                migrate_object(oid, self.stores, self.forwarding, target)
                report.moved += 1
                report.primaries_moved += 1

    def _placement(
        self,
        manager: ReplicationManager,
        oid: Oid,
        anchor: Optional[str],
        active: List[str],
        k_eff: int,
    ) -> Tuple[str, ...]:
        placement = manager.config.policy.place(oid, active, k_eff)
        if anchor is None:
            return tuple(placement)
        if anchor not in placement:
            return (anchor, *[s for s in placement if s != anchor][: k_eff - 1])
        if placement[0] != anchor:
            return (anchor, *[s for s in placement if s != anchor])
        return tuple(placement)

    def _reachable_oids(self, view) -> Dict[Tuple[str, int], Oid]:
        """Oid objects for every key held by a non-departed store.  A
        departed store is never read — in process mode its child may be
        gone, and in the simulator its content is formally lost."""
        oid_map: Dict[Tuple[str, int], Oid] = {}
        for site, store in self.stores.items():
            if view.status_of(site) == DEPARTED:
                continue
            for oid in store.oids():
                oid_map.setdefault(oid.key(), oid)
        return oid_map

    # ------------------------------------------------------------------

    def flush_removals(self, can_remove: Callable[[str], bool]) -> int:
        """Delete displaced copies whose site ``can_remove`` says is safe
        (idle, or departing with no work in hand).  Copies the directory
        re-listed in the meantime (a rejoin) are kept.  Returns the
        number of copies actually deleted."""
        removed = 0
        keep: List[Tuple[str, Oid]] = []
        directory = self.manager.directory if self.manager is not None else None
        for site, oid in self.pending_removals:
            if directory is not None and directory.holds(site, oid):
                continue  # re-placed back here; the removal is obsolete
            if not can_remove(site):
                keep.append((site, oid))
                continue
            store = self.stores.get(site)
            if store is not None and store.contains(oid):
                store.remove(oid)
                removed += 1
                if self.manager is not None:
                    self.manager._announce(site)
        self.pending_removals = keep
        return removed
