"""Elastic cluster membership: join, graceful leave, permanent-crash
detection, and the ring rebalancing that keeps k replicas placed as the
site set changes (docs/MEMBERSHIP.md).

The static site set was the last structural blocker between the paper's
prototype and the ROADMAP's production cluster: ``RingPlacement`` assumed
the sites named at construction are the sites forever.  This package
relaxes that:

* :class:`MembershipConfig` — one frozen config value, carried on
  :class:`~repro.config.ClusterConfig` as ``membership=``.  ``None``
  (the default) keeps every transport bit-identical to the
  fixed-membership build.
* :class:`MembershipView` — the epoch-numbered site-status table every
  component routes against (``up`` / ``leaving`` / ``departed``).
* :class:`MembershipService` — the authoritative view plus the seeded
  gossip failure detector (heartbeat counter tables merged from
  delivered :class:`~repro.net.messages.Heartbeat` frames).
* :class:`Rebalancer` — recomputes placement on every view change and
  moves/re-replicates exactly the objects whose placement changed,
  through the same :class:`~repro.replication.ReplicationManager`
  machinery queries already race against (epoch announcements fire the
  PR 4/5 cache- and directory-invalidation listeners).
"""

from .config import MembershipConfig
from .rebalance import RebalanceReport, Rebalancer
from .service import MembershipService
from .view import DEPARTED, LEAVING, UP, MembershipView

__all__ = [
    "DEPARTED",
    "LEAVING",
    "UP",
    "MembershipConfig",
    "MembershipService",
    "MembershipView",
    "RebalanceReport",
    "Rebalancer",
]
