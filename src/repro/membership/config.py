"""Membership configuration (the ``membership=`` field of ClusterConfig)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class MembershipConfig:
    """How a deployment discovers and reacts to membership changes.

    The default value (all fields at their defaults) enables
    *administrative* membership only: ``join_site`` / ``leave_site`` /
    ``fail_site`` drive view changes and rebalancing, but no heartbeat
    traffic flows.  This is the mode the schedule explorer uses — view
    changes land on exact scheduler decision counts instead of timers,
    so every interleaving replays deterministically.

    ``heartbeat_s`` arms the gossip failure detector on the simulator:
    every period each live member increments its own heartbeat counter
    and ships its counter table to ``fanout`` seeded-randomly chosen
    peers as real :class:`~repro.net.messages.Heartbeat` frames (paying
    wire costs).  A member whose counter stops advancing in the merged
    table for ``fail_after`` consecutive rounds is declared permanently
    failed, exactly as an administrative ``fail_site`` would.  The
    wall-clock transports reject ``heartbeat_s`` (administrative
    membership only there); the frames themselves round-trip through
    the wire codec so a future wall-clock detector speaks the same
    protocol.
    """

    #: Heartbeat period in (virtual) seconds; ``None`` = administrative
    #: membership only, no heartbeat traffic.
    heartbeat_s: Optional[float] = None
    #: Rounds a member's merged counter may stall before it is declared
    #: permanently failed.
    fail_after: int = 3
    #: Peers each member gossips its counter table to per round.
    fanout: int = 2
    #: Seed for the per-round gossip peer choice (determinism).
    seed: int = 0
    #: Run the Rebalancer synchronously on every view change.  Off, view
    #: changes only update routing state — data stays where it was.
    auto_rebalance: bool = True

    def __post_init__(self) -> None:
        if self.heartbeat_s is not None and self.heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive when set")
        if self.fail_after < 1:
            raise ValueError("fail_after must be >= 1")
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")
