"""File-server baseline: ship the data, not the query (paper §1, §5).

The paper motivates HyperFile against a plain file interface: "the server
does not understand the contents; it can only retrieve a file given its
name ... the application will be forced to retrieve many more [objects]
than are actually required."  And in §5: "Performing similar queries in a
distributed file system would require searching entire files; this in
effect results in sending all data to a central site.  At best this uses
a single message for each file, the worst-case requires a message for
each object.  Our messages send only the query (about 40 bytes) versus
potentially huge messages required to send a complete file."

:class:`FileServerBaseline` models that comparator: a client runs the
*same* filtering algorithm locally, but every object it touches must be
fetched from its site over the network — one request/response round trip
plus a transfer time proportional to the object's size.  The client
caches fetched objects (the generous variant; without the cache it is
strictly worse).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..core.oid import Oid
from ..core.program import Program
from ..engine.local import run_local
from ..engine.results import QueryResult
from ..errors import ObjectNotFound
from ..sim.costs import PAPER_COSTS
from ..storage.memstore import MemStore


@dataclass(frozen=True)
class FileServerCosts:
    """Network/cost parameters for the baseline client.

    ``bandwidth_bytes_per_s`` defaults to 10 Mbit/s Ethernet (the paper's
    testbed interconnect); request/response overheads reuse the measured
    message constants so the comparison is apples-to-apples.
    """

    request_s: float = PAPER_COSTS.msg_send_s + PAPER_COSTS.msg_latency_s + PAPER_COSTS.msg_recv_s
    reply_overhead_s: float = PAPER_COSTS.msg_send_s + PAPER_COSTS.msg_latency_s + PAPER_COSTS.msg_recv_s
    bandwidth_bytes_per_s: float = 1_250_000.0
    client_process_s: float = PAPER_COSTS.object_process_s
    result_insert_s: float = PAPER_COSTS.result_insert_s


@dataclass
class FileServerRun:
    """Outcome of a baseline run."""

    result: QueryResult
    response_time_s: float
    fetches: int
    cache_hits: int
    bytes_transferred: int


class FileServerBaseline:
    """Evaluate a query at the client by fetching whole objects."""

    def __init__(
        self,
        stores: Iterable[MemStore],
        costs: Optional[FileServerCosts] = None,
        cache: bool = True,
    ) -> None:
        self._stores = list(stores)
        self.costs = costs if costs is not None else FileServerCosts()
        self.cache_enabled = cache

    def run(self, program: Program, initial: Iterable[Oid]) -> FileServerRun:
        """Run the query client-side; every object fetch crosses the wire."""
        clock = 0.0
        fetches = 0
        cache_hits = 0
        bytes_moved = 0
        cache: Dict[Tuple[str, int], object] = {}

        def fetch(oid: Oid):
            nonlocal clock, fetches, cache_hits, bytes_moved
            key = oid.key()
            if self.cache_enabled and key in cache:
                cache_hits += 1
                return cache[key]
            obj = self._lookup(oid)
            fetches += 1
            size = obj.size_bytes
            bytes_moved += size
            clock += (
                self.costs.request_s
                + self.costs.reply_overhead_s
                + size / self.costs.bandwidth_bytes_per_s
            )
            if self.cache_enabled:
                cache[key] = obj
            return obj

        result = run_local(program, initial, fetch)
        clock += result.stats.objects_processed * self.costs.client_process_s
        clock += result.stats.results_added * self.costs.result_insert_s
        return FileServerRun(
            result=result,
            response_time_s=clock,
            fetches=fetches,
            cache_hits=cache_hits,
            bytes_transferred=bytes_moved,
        )

    def _lookup(self, oid: Oid):
        for store in self._stores:
            if store.contains(oid):
                return store.get(oid)
        raise ObjectNotFound(oid)
