"""Comparator systems: centralized single-site and file-server baselines."""

from .centralized import CentralizedRun, centralized_cluster, run_centralized, union_fetcher
from .fileserver import FileServerBaseline, FileServerCosts, FileServerRun

__all__ = [
    "CentralizedRun",
    "FileServerBaseline",
    "FileServerCosts",
    "FileServerRun",
    "centralized_cluster",
    "run_centralized",
    "union_fetcher",
]
