"""Centralized baseline: the whole database at a single site (paper §5).

"We also ran the tests with all items on a single machine.  This gave a
base case with which to compare the cost of handling remote pointers."

Two entry points:

* :func:`run_centralized` — analytic single-site run over any fetcher,
  costed with the paper's constants (no simulator needed);
* :func:`centralized_cluster` — a 1-site :class:`~repro.cluster.SimCluster`
  for experiments that want identical plumbing to the distributed runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.oid import Oid
from ..core.program import Program
from ..engine.local import Fetcher, run_local
from ..engine.results import QueryResult
from ..sim.costs import CostModel, PAPER_COSTS
from ..storage.memstore import MemStore, UnionStore


@dataclass
class CentralizedRun:
    """Outcome of a single-site run, costed analytically."""

    result: QueryResult
    response_time_s: float


def run_centralized(
    program: Program,
    initial: Iterable[Oid],
    fetch: Fetcher,
    costs: CostModel = PAPER_COSTS,
) -> CentralizedRun:
    """Run at one site; time = objects x 8 ms + results x 20 ms (+ skips).

    This closed form is exactly what the simulated 1-site cluster
    measures (no messages exist), so benchmarks may use either; tests
    assert they agree.
    """
    result = run_local(program, initial, fetch)
    stats = result.stats
    elapsed = (
        stats.objects_processed * costs.object_process_s
        + stats.results_added * costs.result_insert_s
        + (stats.objects_skipped_marked + stats.objects_missing) * costs.mark_check_s
        + 2 * costs.client_link_s
    )
    return CentralizedRun(result=result, response_time_s=elapsed)


def union_fetcher(stores: Iterable[MemStore]) -> Fetcher:
    """A fetcher over several stores, for 'move everything to one site'
    comparisons without physically copying the data."""
    union = UnionStore(stores)
    return union.get


def centralized_cluster(costs: CostModel = PAPER_COSTS, **kwargs):
    """A 1-site simulated cluster (import-cycle-free convenience)."""
    from ..cluster import SimCluster

    return SimCluster(1, costs=costs, **kwargs)
