"""The unified cluster API every transport implements.

The reproduction has three ways to run the same server algorithm — the
discrete-event :class:`~repro.cluster.SimCluster` (calibrated virtual
time), the :class:`~repro.net.threaded.ThreadedCluster` (real threads,
objects by reference) and the :class:`~repro.net.sockets.SocketCluster`
(real TCP frames).  Historically each grew its own client surface; this
module pins down the one contract they all satisfy, so a scenario script
written against :class:`ClusterAPI` runs unchanged on any of them:

* ``submit`` / ``wait`` — non-blocking install plus blocking collection,
  returning a :class:`QueryOutcome` (never a bare result);
* ``run_query`` / ``run_followup`` — the blocking conveniences, with
  identical ``deadline_s`` / ``on_deadline`` semantics everywhere
  (``"partial"`` returns ``result.partial=True``, ``"raise"`` raises
  :class:`~repro.errors.QueryTimeout` with the partial result attached);
* ``wait`` failures are a typed :class:`~repro.errors.TerminationLost`
  on every transport, carrying the credit deficit when the weighted
  detector is in use (see :func:`credit_deficit`);
* ``set_down`` / ``set_up`` and ``total_stats`` for availability
  scripting and measurement;
* ``migrate`` / ``replicate_all`` for data management — with a
  ``replication=`` config (see :mod:`repro.replication`) every transport
  keeps k copies per object and routes reads to any live replica;
* ``attach_tracer`` / ``detach_tracer`` and ``enable_metrics`` /
  ``metrics_snapshot`` — the uniform observability hooks (causal span
  tracing per :mod:`repro.tracing`, telemetry per
  :mod:`repro.metrics.registry`) on every transport, **including**
  ``ClusterConfig(processes=True)``, where spans ship across process
  boundaries over the control channel;
* the wider telemetry plane rides on :class:`~repro.config.ClusterConfig`:
  ``flight_recorder=`` arms a per-site bounded ring of recent spans
  (dumped automatically when a query dies badly — ``TerminationLost``,
  ``partial_reason="crash"``, deadline expiry), ``stats_stream_s=``
  streams periodic :class:`~repro.server.stats.NodeStats` samples into
  ``cluster.stats_timeline`` (a
  :class:`~repro.metrics.collect.StatsTimeline`), and completion stamps
  submit→first-result / submit→complete SLO histograms per tenant and
  priority into the metrics registry (see ``docs/OBSERVABILITY.md``);
* ``submit`` / ``run_query`` accept ``priority`` (service class) and
  ``client`` (admission identity) when a :class:`~repro.qos.QoSConfig`
  is active — a drained admission bucket bounces the submit with
  :class:`~repro.errors.Overloaded`, and load-shed work surfaces as
  ``result.partial`` with ``partial_reason == "shed"`` (see
  ``docs/QOS.md``).

``timeout_s`` is a wall-clock backstop; the simulator ignores it (its
clock is virtual — an idle event queue, not elapsed time, is its failure
signal) but accepts it so conformance scripts need no special-casing.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Protocol, Union, runtime_checkable

from .core.ast import Query
from .core.oid import Oid
from .core.parser import parse_query
from .core.program import Program, compile_query
from .core.validate import validate_query
from .engine.results import QueryResult
from .net.messages import QueryId
from .server.stats import NodeStats

#: Anything we can turn into an executable program.
QueryLike = Union[str, Query, Program]


def compile_query_like(query: QueryLike) -> Program:
    """Accept query text, AST, or a compiled program (shared by all
    transports, so strings work everywhere, not only on the simulator)."""
    if isinstance(query, str):
        query = parse_query(query)
    if isinstance(query, Query):
        validate_query(query)
        return compile_query(query)
    if isinstance(query, Program):
        return query
    raise TypeError(f"cannot compile {type(query).__name__} into a query program")


@dataclass
class QueryOutcome:
    """A completed query, with client-visible timing.

    ``submitted_at`` / ``completed_at`` are virtual seconds on the
    simulator and ``time.monotonic()`` readings on the real transports;
    only their difference is meaningful either way.
    """

    qid: QueryId
    result: QueryResult
    submitted_at: float
    completed_at: float
    client_link_s: float = 0.0
    partition_counts: Optional[Dict[str, int]] = None

    @property
    def response_time(self) -> float:
        """Wall-clock at the client: submit → results in hand."""
        return (self.completed_at - self.submitted_at) + 2 * self.client_link_s

    @property
    def partial_reason(self) -> Optional[str]:
        """Why the result is partial — ``"deadline"``, ``"crash"`` or
        ``"shed"`` — or ``None`` when it is complete."""
        return self.result.partial_reason


@runtime_checkable
class ClusterAPI(Protocol):
    """The client surface shared by every registered transport.

    Structural (``Protocol``): the clusters do not inherit from it, they
    conform to it — ``isinstance(cluster, ClusterAPI)`` checks the shape,
    and the conformance suite checks the behaviour.
    """

    @property
    def sites(self) -> List[str]: ...

    def store(self, site: str): ...

    def submit(
        self,
        query: QueryLike,
        initial: Iterable[Oid],
        originator: Optional[str] = None,
        deadline_s: Optional[float] = None,
        priority: Optional[str] = None,
        client: str = "default",
    ) -> QueryId: ...

    def wait(self, qid: QueryId, timeout_s: Optional[float] = None) -> QueryOutcome: ...

    def run_query(
        self,
        query: QueryLike,
        initial: Iterable[Oid],
        originator: Optional[str] = None,
        deadline_s: Optional[float] = None,
        on_deadline: str = "partial",
        timeout_s: Optional[float] = None,
        priority: Optional[str] = None,
        client: str = "default",
    ) -> QueryOutcome: ...

    def run_followup(
        self,
        query: QueryLike,
        source_qid: QueryId,
        originator: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> QueryOutcome: ...

    def outcome(self, qid: QueryId) -> Optional[QueryOutcome]: ...

    def migrate(self, oid: Oid, to_site: str) -> Oid: ...

    def replicate_all(self) -> int: ...

    def set_down(self, site: str) -> None: ...

    def set_up(self, site: str) -> None: ...

    def is_up(self, site: str) -> bool: ...

    def is_down(self, site: str) -> bool: ...

    def total_stats(self) -> NodeStats: ...

    def attach_tracer(self, tracer) -> None: ...

    def detach_tracer(self) -> None: ...

    def enable_metrics(self, registry=None): ...

    def metrics_snapshot(self): ...

    def close(self) -> None: ...


# --------------------------------------------------------------------------
# transport registry
# --------------------------------------------------------------------------


#: name -> factory(sites, *, config=None, **kwargs) -> ClusterAPI.
#: Builtins register lazily (import-on-first-use) so importing this
#: module never pulls in asyncio/socket machinery the caller won't use.
_TRANSPORTS: Dict[str, "TransportFactory"] = {}


class TransportFactory(Protocol):
    def __call__(self, sites: int = 3, **kwargs) -> "ClusterAPI": ...


def register_transport(name: str, factory: TransportFactory, *, replace: bool = False) -> None:
    """Register a cluster factory under a transport name.

    Third parties (and the builtins below) plug in here; the facade, the
    CLI, and the conformance suite all resolve transports by name, so a
    registered transport is immediately reachable everywhere — e.g.
    ``HyperFile(transport="mytransport")`` and ``repro --transport
    mytransport``.
    """
    if not name or not name.isidentifier():
        raise ValueError(f"transport name must be an identifier, got {name!r}")
    if name in _TRANSPORTS and not replace:
        raise ValueError(f"transport {name!r} is already registered")
    _TRANSPORTS[name] = factory


def transport_names() -> List[str]:
    """The registered transport names, sorted (for help text / errors)."""
    return sorted(_TRANSPORTS)


def transport_factory(name: str) -> TransportFactory:
    """Resolve one transport's factory; raises ``ValueError`` on unknowns."""
    try:
        return _TRANSPORTS[name]
    except KeyError:
        known = ", ".join(transport_names())
        raise ValueError(f"unknown transport {name!r} (registered: {known})") from None


def make_cluster(name: str, sites: int = 3, **kwargs) -> "ClusterAPI":
    """Build a cluster by transport name (the registry's front door)."""
    return transport_factory(name)(sites, **kwargs)


def _builtin(module: str, cls: str) -> TransportFactory:
    def factory(sites: int = 3, **kwargs) -> "ClusterAPI":
        import importlib

        return getattr(importlib.import_module(module), cls)(sites, **kwargs)

    factory.__name__ = f"{module}.{cls}"
    return factory


register_transport("sim", _builtin("repro.cluster", "SimCluster"))
register_transport("threaded", _builtin("repro.net.threaded", "ThreadedCluster"))
register_transport("sockets", _builtin("repro.net.sockets", "SocketCluster"))
register_transport("async", _builtin("repro.net.asyncio_cluster", "AsyncCluster"))


def credit_deficit(nodes, qid: QueryId) -> Optional[Fraction]:
    """How much termination credit a query is missing, cluster-wide.

    The weighted-message detector conserves a total credit of 1: the
    originator recovers what returns, every context holds what is in
    play, and whatever the sum leaves uncovered is in flight — or, if the
    system is idle, lost.  ``1 - recovered - Σ held`` is therefore the
    exact deficit blocking termination, the number
    :class:`~repro.errors.TerminationLost` reports on every transport.

    Returns ``None`` for detectors without a credit ledger (e.g.
    Dijkstra-Scholten) or when the originator's context is gone.
    """
    recovered: Optional[Fraction] = None
    held = Fraction(0)
    for node in nodes.values():
        ctx = node.contexts.get(qid)
        if ctx is None:
            continue
        state = ctx.term_state
        credit = getattr(state, "credit", None)
        if not isinstance(credit, Fraction):
            return None
        held += credit
        if getattr(state, "is_originator", False):
            rec = getattr(state, "recovered", None)
            recovered = rec if isinstance(rec, Fraction) else None
    if recovered is None:
        return None
    return Fraction(1) - recovered - held
