"""Per-node operational statistics.

Counters every server node maintains, independent of any single query.
The metrics layer (:mod:`repro.metrics`) aggregates these across a
cluster; benchmarks read them to report message counts and bytes moved,
the quantities the paper's trade-off discussion revolves around
(message cost vs. parallelism vs. delay).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class NodeStats:
    """Counters for one site."""

    messages_sent: Dict[str, int] = field(default_factory=dict)
    messages_received: Dict[str, int] = field(default_factory=dict)
    bytes_sent: int = 0
    bytes_received: int = 0
    failed_sends: int = 0          #: messages dropped because the target was down
    duplicate_requests: int = 0    #: arriving DerefRequests the local mark table suppressed
                                   #: (the messages a hypothetical global table would save)
    forwarded_requests: int = 0    #: DerefRequests re-routed via naming (migrations)
    objects_processed: int = 0
    marked_skips: int = 0
    busy_seconds: float = 0.0      #: virtual CPU time consumed at this site
    drains: int = 0                #: local working-set drain events
    contexts_created: int = 0
    # Fault-tolerance counters (reliable channel + query deadlines).
    retransmits: int = 0           #: reliable-channel frames re-sent (unacked in time)
    duplicates_dropped: int = 0    #: replayed frames the receive-side dedup absorbed
    reliable_give_ups: int = 0     #: sends abandoned after max retransmit attempts
    deadline_expiries: int = 0     #: queries force-completed by their deadline
    late_messages: int = 0         #: results/controls arriving after completion, ignored
    # Batching counters (comms coalescing layer, see repro.net.batching).
    batched_items: int = 0         #: work items shipped inside BatchedQuery frames
    sends_suppressed: int = 0      #: sends skipped by sent-set / remote mark hints
    batch_flushes_size: int = 0    #: queue flushes triggered by the size threshold
    batch_flushes_drain: int = 0   #: flushes triggered by a working-set drain
    batch_flushes_timer: int = 0   #: flushes triggered by the linger timer
    batch_flushes_idle: int = 0    #: flushes triggered by node-idle force-flush
    # Caching counters (cross-query caching layer, see repro.cache).
    cache_hits: int = 0            #: engine steps served from the fragment cache
    cache_misses: int = 0          #: fragment-cache probes that missed (or were stale)
    cache_evictions: int = 0       #: fragment entries evicted by the LRU/byte budget
    query_cache_hits: int = 0      #: whole queries answered from the result cache
    sends_suppressed_bloom: int = 0  #: remote work suppressed by a peer's Bloom summary
    summaries_sent: int = 0        #: site summaries piggybacked on result messages
    summaries_received: int = 0    #: site summaries ingested from result messages
    # Replication counters (k-way replica routing, see repro.replication).
    replica_failovers: int = 0     #: work re-routed to another live replica
    replica_local_serves: int = 0  #: remote-targeted work admitted at a local replica
    # QoS counters (admission control / backpressure / shedding, see repro.qos).
    work_shed: int = 0             #: arriving work items dropped by load shedding
    backpressure_transitions: int = 0  #: times this site crossed its high watermark
    sends_throttled: int = 0       #: size-flushes deferred toward pressured destinations

    def count_sent(self, kind: str, size: int) -> None:
        self.messages_sent[kind] = self.messages_sent.get(kind, 0) + 1
        self.bytes_sent += size

    def count_received(self, kind: str, size: int) -> None:
        self.messages_received[kind] = self.messages_received.get(kind, 0) + 1
        self.bytes_received += size

    @property
    def total_sent(self) -> int:
        return sum(self.messages_sent.values())

    @property
    def total_received(self) -> int:
        return sum(self.messages_received.values())

    def merge(self, other: "NodeStats") -> None:
        """Accumulate another node's counters into this one.

        Driven by ``dataclasses.fields`` so a newly added counter is
        merged automatically — forgetting it here silently under-reported
        cluster totals when this was a hand-maintained list.  Dict fields
        merge per key; numeric fields add.
        """
        for f in fields(self):
            mine = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if isinstance(mine, dict):
                for key, n in theirs.items():
                    mine[key] = mine.get(key, 0) + n
            elif isinstance(mine, (int, float)):
                setattr(self, f.name, mine + theirs)
            else:  # pragma: no cover - no such fields today
                raise TypeError(
                    f"NodeStats.merge cannot combine field {f.name!r} of type "
                    f"{type(mine).__name__}"
                )

    def sample(self) -> Dict[str, object]:
        """A plain-dict snapshot of every counter (field-driven, like
        :meth:`merge`) — what the streaming-stats samplers append to the
        :class:`~repro.metrics.collect.StatsTimeline` each period.  Dict
        fields are copied so the sample is immune to later mutation;
        safe to call from a sampler thread (dict copies of int values)."""
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = dict(value) if isinstance(value, dict) else value
        return out
