"""HyperFile server sites: per-site node logic, contexts, statistics."""

from .context import QueryContext
from .node import ServerNode, StepReport
from .stats import NodeStats

__all__ = ["NodeStats", "QueryContext", "ServerNode", "StepReport"]
