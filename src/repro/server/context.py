"""Per-site query contexts (paper §3.2).

"Each site keeps a local context for queries it is processing", holding
``Q.id``, ``Q.originator``, ``Q.body``, ``Q.size``, ``Q.mark_table``,
``Q.W`` and ``Q.result``.  Here the mark table, working set and result
live inside the embedded :class:`~repro.engine.local.QueryExecution`;
the context adds the originator-side aggregation state, the termination
detector's ledger, and flush cursors (a site ships only results
accumulated since its previous drain — "Q.result is sent to
Q.originator, and Q.result is reset to {}").

The context survives across drains: "after a site has emptied Q.W and
sent results, another dereference message for Q may arrive.  Since the
context Q is still in place, the setup cost is only required once at
each involved site."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.oid import Oid
from ..engine.local import QueryExecution
from ..engine.results import QueryResult
from ..net.messages import QueryId


@dataclass
class QueryContext:
    """Everything one site knows about one in-flight query."""

    qid: QueryId
    execution: QueryExecution
    is_originator: bool
    term_state: Any

    #: Originator only: the aggregated, application-visible result.
    final: Optional[QueryResult] = None

    #: Originator only: True once the termination detector has fired.
    done: bool = False

    #: Originator only (distributed-set mode): per-site result counts.
    partition_counts: Dict[str, int] = field(default_factory=dict)

    #: Originator only: sites that sent results (context-GC recipients).
    participants: set = field(default_factory=set)

    #: Flush cursors into the execution's cumulative result.
    _oid_cursor: int = 0
    _emission_cursor: Dict[str, int] = field(default_factory=dict)

    #: Number of local drains (result messages sent / credit returns).
    drains: int = 0

    #: Tracing: span id of the event that created this context (the
    #: ``submit`` at the originator, the first ``recv`` elsewhere).
    #: Fallback parent for events with no tighter cause, so a traced
    #: query's span tree stays connected.  None when untraced.
    root_span: Optional[int] = None

    #: Originator only, caching enabled: the whole-query cache key this
    #: answer will be stored under at completion, plus the local store
    #: epoch captured at submit (the answer is cached only if the store
    #: was not mutated in between).  None when caching is off or the
    #: query was ineligible.
    cache_key: Optional[tuple] = None
    cache_epoch: int = 0

    #: Which run of this query id the context belongs to.  1 for every
    #: query whose id is never reused; bumped when an expired query's id
    #: is resubmitted, so stale in-flight messages from the previous run
    #: (which carry the old incarnation, or none) are dropped instead of
    #: corrupting the new run's credit ledger or result set.
    incarnation: int = 1

    #: QoS service class (see :mod:`repro.qos`); meaningful only when the
    #: node runs with a QoSConfig, "interactive" otherwise.
    priority: str = "interactive"

    #: Work items this site shed for the query since its last drain; the
    #: count rides the next drain's term attachment as ``#shed`` so the
    #: originator knows the outcome is partial.
    shed_pending: int = 0

    #: Originator only: some site (possibly this one) shed work for this
    #: query — the final result is partial with reason ``"shed"``.
    saw_shed: bool = False

    #: Work branches this site abandoned because their destination was
    #: down (no live replica either).  At the originator this decides
    #: ``partial_reason`` when a deadline expires: ``"crash"`` beats
    #: ``"deadline"`` when branches were written off.
    abandoned: int = 0

    #: Originator only: SLO watermarks.  ``submitted_at`` is stamped by
    #: :meth:`ServerNode.submit` from the node clock; ``first_result_at``
    #: the first time a result lands in ``final`` (local merge or remote
    #: ResultBatch); both feed the ``slo.*`` histograms at completion.
    #: ``tenant`` labels them (the QoS ``client=``, "default" otherwise).
    submitted_at: Optional[float] = None
    first_result_at: Optional[float] = None
    tenant: str = "default"

    @property
    def busy(self) -> bool:
        """Does this site still hold work for the query?"""
        return self.execution.has_work

    def take_unflushed(self) -> Tuple[Tuple[Oid, ...], Tuple[Tuple[str, Any], ...]]:
        """Results accumulated since the last drain (and advance cursors)."""
        oids = tuple(self.execution.result.oids.as_list()[self._oid_cursor :])
        self._oid_cursor += len(oids)
        emissions: List[Tuple[str, Any]] = []
        for target, values in self.execution.result.retrieved.items():
            start = self._emission_cursor.get(target, 0)
            for value in values[start:]:
                emissions.append((target, value))
            self._emission_cursor[target] = len(values)
        return oids, tuple(emissions)

    def local_partition(self) -> List[Oid]:
        """This site's full local result partition (distributed-set mode)."""
        return self.execution.result.oids.as_list()
