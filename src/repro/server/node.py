"""A HyperFile server site (paper §3.2).

"All sites run an identical algorithm."  A :class:`ServerNode` owns one
site's object store and a table of query contexts, and exposes a
step-driven interface so different drivers can run it:

* the **simulated cluster** (:mod:`repro.net.simnet`) calls :meth:`step`
  from discrete events and converts the reported costs into virtual time;
* the **threaded cluster** (:mod:`repro.net.threaded`) calls it from a
  real worker thread;
* tests call it directly.

Each step does exactly one unit of work — ingest one message or push one
object through the filters — and reports its cost (per the
:class:`~repro.sim.costs.CostModel`) plus any outgoing envelopes.  The
node never blocks: remote dereferences become messages ("send the query,
not the data") and the site keeps processing whatever else is in its
working sets, which is where the algorithm's parallelism comes from.

Naming (§4) is folded into :meth:`locate`: try the local store, then the
site's forwarding table (objects that migrated away), then fall back to
the id's presumed site or birth site.  A :class:`DerefRequest` that
arrives for an object that moved is re-forwarded rather than failed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from ..cache import CacheConfig, NodeCache
from ..core.oid import Oid
from ..core.program import Program
from ..engine.items import WorkItem
from ..engine.local import QueryExecution
from ..engine.results import QueryResult
from ..errors import HyperFileError, ObjectNotFound, TerminationProtocolError
from ..metrics.registry import SLO_BUCKETS
from ..naming.directory import ForwardingTable, ReplicaDirectory
from ..net.batching import BatchConfig, ItemKey, SendBatcher, item_key
from ..qos import PRIORITIES, QoSConfig
from ..net.messages import (
    BatchedQuery,
    BatchedResults,
    ControlMessage,
    DerefRequest,
    Envelope,
    FetchReply,
    FetchRequest,
    Heartbeat,
    PurgeContext,
    QueryId,
    ResultBatch,
    SeedFromSaved,
    Undeliverable,
)
from ..sim.costs import CostModel, PAPER_COSTS
from ..storage.memstore import MemStore
from ..storage.reachability import match_closure_shape
from ..termination.base import TerminationStrategy
from ..termination.weights import WeightedStrategy
from .context import QueryContext
from .stats import NodeStats

#: Callback fired at the originator when a query completes.
CompletionCallback = Callable[[QueryId, QueryResult], None]


def _credit_detail(payload: Any) -> Optional[str]:
    """Total termination credit riding a message, as an exact string.

    Fuel for the credit-flow audit (:mod:`repro.profiling`): every traced
    send/recv records the credit it moved, so a ``TerminationLost`` deficit
    can be explained span by span.  Returns ``None`` for credit-free
    messages so their trace details stay clean.
    """
    terms: List[Any] = []
    if isinstance(payload, BatchedQuery):
        terms.extend(payload.terms)
    elif isinstance(payload, BatchedResults):
        terms.extend(batch.term for batch in payload.batches)
    else:
        term = getattr(payload, "term", None)
        if term is not None:
            terms.append(term)
    total = None
    for term in terms:
        credit = term.get("credit") if hasattr(term, "get") else None
        if credit is not None:
            total = credit if total is None else total + credit
    return None if total is None else str(total)


@dataclass
class StepReport:
    """Outcome of one node step: virtual cost plus outbound messages.

    ``completed`` carries queries whose termination detector fired during
    this step; drivers deliver them to the client *after* charging the
    step's cost, so completion timestamps include the work that produced
    them.
    """

    elapsed: float = 0.0
    outgoing: List[Envelope] = field(default_factory=list)
    completed: List[tuple] = field(default_factory=list)


class ServerNode:
    """One HyperFile site: store + query contexts + message handlers."""

    def __init__(
        self,
        site: str,
        store: MemStore,
        costs: CostModel = PAPER_COSTS,
        termination: Optional[TerminationStrategy] = None,
        discipline: str = "fifo",
        result_mode: str = "ship",
        mark_granularity: str = "iteration",
        forwarding: Optional[ForwardingTable] = None,
        is_site_up: Optional[Callable[[str], bool]] = None,
        on_query_complete: Optional[CompletionCallback] = None,
        gc_contexts: bool = False,
        batching: Optional[BatchConfig] = None,
        caching: Optional[CacheConfig] = None,
        replicas: Optional[ReplicaDirectory] = None,
        qos: Optional[QoSConfig] = None,
    ) -> None:
        """
        Parameters
        ----------
        result_mode:
            ``"ship"`` — drains send result oids to the originator (the
            paper's base algorithm).  ``"count"`` — the distributed-set
            optimisation of §5: drains report only a count, each site
            retains its result partition for follow-up queries.
        forwarding:
            This site's forwarding table for migrated objects (naming §4).
        is_site_up:
            Availability oracle; sends to down sites are dropped and
            counted so partial results still terminate cleanly.
        batching:
            Comms-coalescing config (:class:`~repro.net.batching.BatchConfig`).
            ``None`` (or ``max_batch=1`` with no linger) keeps the legacy
            one-message-per-pointer path, bit-identical to before.
        caching:
            Cross-query caching config (:class:`~repro.cache.CacheConfig`):
            fragment-result reuse, Bloom-summary send pruning, and the
            originator's whole-query answer cache.  ``None`` disables the
            subsystem entirely — behaviour is bit-identical to an
            uncached node.
        replicas:
            Cluster-shared :class:`~repro.naming.directory.ReplicaDirectory`
            when k-way replication is on: routing prefers a local replica
            (read anycast), sends target the first *live* holder, and
            bounced work fails over to the next replica instead of being
            abandoned.  ``None`` (or an object absent from the directory)
            keeps the paper's single-holder :meth:`locate` path exactly.
        qos:
            Admission-control / QoS config (:class:`~repro.qos.QoSConfig`):
            priority classes with weighted-fair drain, high/low-watermark
            backpressure piggybacked on envelopes, and load shedding that
            converts overload into exact-credit partial results.  ``None``
            disables the subsystem — behaviour (scheduling order, wire
            frames, costs) is bit-identical to a QoS-free node.
        """
        if result_mode not in ("ship", "count"):
            raise ValueError(f"result_mode must be 'ship' or 'count', got {result_mode!r}")
        self.site = site
        self.store = store
        self.costs = costs
        self.termination = termination if termination is not None else WeightedStrategy()
        self.discipline = discipline
        self.result_mode = result_mode
        self.mark_granularity = mark_granularity
        self.forwarding = forwarding if forwarding is not None else ForwardingTable(site)
        self.is_site_up = is_site_up if is_site_up is not None else (lambda _site: True)
        #: Membership routing hook: maps a site name to its view status
        #: (``"up"`` / ``"leaving"`` / ``"departed"``).  Clusters with
        #: dynamic membership point this at their MembershipService; the
        #: default reports every site up, so a membership-free build
        #: routes bit-identically to before.
        self.membership_status: Callable[[str], str] = lambda _site: "up"
        #: Membership heartbeat sink: called with a delivered
        #: :class:`~repro.net.messages.Heartbeat`'s counter table.  Wired
        #: by clusters running the gossip failure detector.
        self.heartbeat_sink: Optional[Callable[[Tuple[Tuple[str, int], ...]], None]] = None
        self.on_query_complete = on_query_complete
        #: When True, the originator broadcasts PurgeContext on completion
        #: so participants free their per-query state.  Off by default:
        #: retained contexts are what distributed sets seed from.
        self.gc_contexts = gc_contexts
        self.batching = batching if batching is not None else BatchConfig(max_batch=1)
        self._batcher = SendBatcher(self.batching) if self.batching.enabled else None
        self.caching = caching
        self.replicas = replicas
        #: Clock for batch linger aging; real transports point this at
        #: ``time.monotonic`` (the simulator relies on drain/idle flushes).
        self.now_fn: Callable[[], float] = lambda: 0.0
        self.contexts: Dict[QueryId, QueryContext] = {}
        self.inbox: Deque[Envelope] = deque()
        self.stats = NodeStats()
        self._cache = (
            NodeCache(site, caching, self.stats)
            if caching is not None and caching.enabled
            else None
        )
        #: Closure-shape pointer key per query (None for non-closure
        #: programs); drives Bloom rule-B suppression.  Caching only.
        self._closure_keys: Dict[QueryId, Optional[str]] = {}
        #: Originator side: current incarnation per reused query id (a
        #: qid resubmitted after deadline expiry).  Absent = 1, the
        #: common case, which never stamps the wire.
        self._incarnations: Dict[QueryId, int] = {}
        self._rr: Deque[QueryId] = deque()  # round-robin order over busy contexts
        self.qos = qos
        #: QoS: sites whose last envelope signalled high-watermark pressure.
        self._pressured: set = set()
        #: QoS: this site's own pressure state (1 = above high watermark,
        #: 0 = clear), with hysteresis between the two watermarks.
        self._pressure_state = 0
        if qos is not None:
            #: Per-class round-robin queues for weighted-fair drain.
            self._rr_class: Dict[str, Deque[QueryId]] = {p: deque() for p in PRIORITIES}
            #: Remaining drain turns per class in the current WFQ round.
            self._wfq_credits: Dict[str, int] = {
                "interactive": qos.interactive_weight, "batch": qos.batch_weight,
            }
        #: Optional QueryTracer (see repro.tracing); None = zero overhead.
        self.tracer = None
        #: Optional MetricsRegistry (see repro.metrics.registry); None =
        #: zero overhead, same contract as the tracer.
        self.metrics = None
        #: Tracing: span id of the event anchoring the current step (the
        #: recv/process/submit that work in this step descends from).
        self._step_span: Optional[int] = None
        #: Tracing: admission-cause span per pending work item, so the
        #: eventual process/skip event parents on the step that admitted it.
        self._item_spans: Dict[Tuple[QueryId, ItemKey], int] = {}
        #: Completed client fetches: request_id -> HFObject | None.
        self.fetch_results: Dict[int, Any] = {}
        self._next_fetch_id = 0

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------

    def locate(self, oid: Oid) -> str:
        """Resolve an object id to the site that should process it.

        Order of authority: the local store (object is here), this site's
        forwarding table (it was here and moved), birth-site arbitration
        (if born here and unknown, it does not exist — treat as local so
        the miss is recorded), and finally the id's presumed-site hint.
        """
        if self.store.contains(oid):
            return self.site
        forwarded = self.forwarding.lookup(oid)
        if forwarded is not None:
            return forwarded
        if oid.birth_site == self.site:
            return self.site
        hint = oid.hint
        if hint == self.site:
            # The hint is stale (object believed here but absent); the
            # birth site is the final arbiter.
            return oid.birth_site
        return hint

    def _route(self, oid: Oid, exclude: Tuple[str, ...] = ()) -> str:
        """Replica-aware :meth:`locate`: where should this dereference go?

        Read anycast — any live holder may serve the request.  Preference
        order: this site if it holds a replica (no message at all), then
        the first *live* holder in placement order.  Objects absent from
        the replica directory (and every ``k=1`` deployment, whose
        directory is empty) fall back to the paper's naming chain, so the
        replica-free build routes bit-identically to before.

        ``exclude`` lists holders already attempted (failover); if every
        holder is excluded or down, the placement primary is returned and
        the caller's normal down-site accounting abandons the branch.
        """
        if self.replicas is None:
            return self.locate(oid)
        sites = self.replicas.sites_of(oid)
        if not sites:
            return self.locate(oid)
        if self.site in sites and self.site not in exclude:
            return self.site
        for site in sites:
            if site not in exclude and self.is_site_up(site) and self._takes_work(site):
                return site
        return sites[0]

    def _takes_work(self, site: str) -> bool:
        """May new work be sent to ``site``?  Leaving/departed members
        finish what they hold but receive nothing new."""
        return self.membership_status(site) == "up"

    def _next_replica(self, oid: Oid, exclude: set) -> Optional[str]:
        """The next live holder to fail a bounced dereference over to.

        Returns this site when it holds a replica itself (serve locally,
        no message), another live holder otherwise, or ``None`` when no
        un-tried live replica remains — the branch is then abandoned with
        partial results, exactly like the unreplicated bounce path.
        """
        if self.replicas is None:
            return None
        sites = self.replicas.sites_of(oid)
        if not sites:
            return None
        if self.site in sites and self.site not in exclude:
            return self.site
        for site in sites:
            if site not in exclude and self.is_site_up(site) and self._takes_work(site):
                return site
        return None

    # ------------------------------------------------------------------
    # client-facing entry points (used at the originating site)
    # ------------------------------------------------------------------

    def submit(
        self,
        qid: QueryId,
        program: Program,
        initial: Iterable[Oid],
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> StepReport:
        """Install an originator context and seed the initial set ``S_i``."""
        if qid.originator != self.site:
            raise HyperFileError(f"query {qid} submitted at non-originating site {self.site}")
        self._prepare_resubmit(qid)
        report = StepReport()
        if self.tracer is not None:
            self._step_span = self.tracer.emit(self.site, "submit", qid, filters=program.size)
        initial = list(initial)
        ctx = self._ensure_context(qid, program)
        if self.qos is not None:
            ctx.priority = priority if priority is not None else self.qos.default_priority
        # SLO watermarks: stamped from the node clock (virtual on sim,
        # monotonic on the wall-clock transports) so submit→first-result
        # and submit→complete are measured where completion is decided.
        ctx.submitted_at = self.now_fn()
        if tenant is not None:
            ctx.tenant = tenant
        self.termination.on_start(ctx.term_state)
        if (
            self._cache is not None
            and self._cache.config.query_cache
            and self.result_mode == "ship"
        ):
            key = self._cache.query_key(
                program, tuple(WorkItem(oid=oid, start=1) for oid in initial)
            )
            hit = self._cache.lookup_query(key, self.store.epoch)
            if hit is not None:
                # Serve the whole answer from cache: write the ledger off
                # (no work was split) and complete through the normal
                # termination path so traces/callbacks look identical.
                self.termination.on_deadline(ctx.term_state)
                report.elapsed += self.costs.cache_hit_s
                assert ctx.final is not None
                for oid in hit.oids:
                    ctx.final.oids.add(oid)
                for target, value in hit.retrieved:
                    ctx.final.retrieved.setdefault(target, []).append(value)
                self._check_termination(ctx, report)
                return report
            ctx.cache_key = key
            ctx.cache_epoch = self.store.epoch
            self._cache.begin_query(qid)
        for oid in initial:
            target = self._route(oid)
            if target == self.site:
                item = WorkItem(oid=oid, start=1)
                ctx.execution.admit(item)
                if self._step_span is not None:
                    self._item_spans[(qid, item_key(item))] = self._step_span
            else:
                self._send_work(ctx, target, WorkItem(oid=oid, start=1), report)
        self._enqueue_rr(qid)
        self._drain_if_idle(ctx, report)
        return report

    def submit_from_saved(
        self,
        qid: QueryId,
        program: Program,
        source_qid: QueryId,
        sites: Iterable[str],
    ) -> StepReport:
        """Start a follow-up query over a distributed set (paper §5).

        Each site that holds a partition of ``source_qid``'s result is
        asked to seed its working set from it; no oids cross the network.
        """
        if qid.originator != self.site:
            raise HyperFileError(f"query {qid} submitted at non-originating site {self.site}")
        self._prepare_resubmit(qid)
        report = StepReport()
        if self.tracer is not None:
            self._step_span = self.tracer.emit(
                self.site, "submit", qid, filters=program.size, followup=str(source_qid)
            )
        ctx = self._ensure_context(qid, program)
        self.termination.on_start(ctx.term_state)
        for site in sites:
            if site == self.site:
                for oid in self.saved_partition(source_qid):
                    item = WorkItem(oid=oid, start=1)
                    ctx.execution.admit(item)
                    if self._step_span is not None:
                        self._item_spans[(qid, item_key(item))] = self._step_span
            else:
                attach = self.termination.on_send_work(ctx.term_state)
                self._emit(
                    report, site,
                    SeedFromSaved(qid, program, source_qid, self._stamp_inc(ctx, attach)),
                )
        self._enqueue_rr(qid)
        self._drain_if_idle(ctx, report)
        return report

    def saved_partition(self, qid: QueryId) -> List[Oid]:
        """This site's retained result partition for a finished query."""
        ctx = self.contexts.get(qid)
        if ctx is None:
            return []
        return ctx.local_partition()

    def request_fetch(self, oid: Oid) -> Tuple[int, StepReport]:
        """Client-facing whole-object retrieval (the file-interface half
        of the paper's spectrum: "retrieve a file given its name").

        Local objects complete immediately; remote ones send a
        :class:`FetchRequest` to the holder and complete when the
        :class:`FetchReply` lands in :attr:`fetch_results`.
        """
        self._next_fetch_id += 1
        request_id = self._next_fetch_id
        report = StepReport()
        target = self._route(oid)
        if target == self.site:
            try:
                self.fetch_results[request_id] = self.store.get(oid)
            except ObjectNotFound:
                self.fetch_results[request_id] = None
            report.elapsed += self.costs.mark_check_s
        else:
            self._emit(report, target, FetchRequest(request_id, oid, reply_to=self.site))
        return request_id, report

    def expire_query(self, qid: QueryId) -> StepReport:
        """Originator-side deadline expiry (the paper's partial-results
        semantics under *arbitrary* failure, not only scripted down sites).

        Write off outstanding detector state, abandon local pending work,
        and complete the query immediately with whatever results arrived,
        flagged ``partial``.  Idempotent: a no-op if the query already
        completed (or is unknown here).
        """
        report = StepReport()
        ctx = self.contexts.get(qid)
        if ctx is None or not ctx.is_originator or ctx.done:
            return report
        abandoned = ctx.execution.abandon()
        self._merge_local_results(ctx)
        self.termination.on_deadline(ctx.term_state)
        if self._item_spans:
            self._drop_item_spans(qid)
        if self._batcher is not None:
            # Pending queued sends carried credit, but on_deadline just
            # wrote the whole ledger off — dropping them is consistent.
            self._batcher.drop_query(qid)
        if self._cache is not None:
            # A partial answer must never be served from cache.
            self._cache.drop_query(qid)
        ctx.done = True
        assert ctx.final is not None
        ctx.final.partial = True
        # Why the result is incomplete: branches written off to down
        # sites outrank the timer itself ("crash" beats "deadline"); a
        # query that was also shed keeps the richer shed reason.
        if ctx.saw_shed:
            ctx.final.partial_reason = "shed"
        elif ctx.abandoned:
            ctx.final.partial_reason = "crash"
        else:
            ctx.final.partial_reason = "deadline"
        self.stats.deadline_expiries += 1
        if self.tracer is not None:
            self._step_span = self.tracer.emit(
                self.site, "timeout", qid, parent=ctx.root_span,
                abandoned=abandoned, results=len(ctx.final.oids),
            )
        self._stamp_slo(ctx)
        if self.gc_contexts:
            for participant in sorted(ctx.participants):
                if participant != self.site:
                    self._emit(report, participant, PurgeContext(ctx.qid))
        report.completed.append((qid, ctx.final))
        if self.on_query_complete is not None:
            self.on_query_complete(qid, ctx.final)
        return report

    # ------------------------------------------------------------------
    # transport-facing entry points
    # ------------------------------------------------------------------

    def on_message(self, env: Envelope) -> None:
        """Enqueue an arriving message (costed when handled, not here)."""
        if self.heartbeat_sink is not None and isinstance(env.payload, Heartbeat):
            # Gossip is consumed entirely at arrival: the liveness
            # evidence counts from the moment the bytes land (otherwise
            # query load at the *receiver* would inflate failure
            # suspicion of healthy *senders*), and the frame never
            # enters the work queue — membership upkeep runs beside the
            # query engine, not instead of it.  Wire costs were paid.
            if self.tracer is not None:
                self.tracer.emit(
                    self.site, "heartbeat", "",
                    origin=env.payload.origin, entries=len(env.payload.counters),
                )
            self.heartbeat_sink(env.payload.counters)
            return
        self.inbox.append(env)

    def observe_epoch(self, site: str, epoch: int) -> None:
        """Out-of-band cache invalidation: ``site``'s store epoch moved
        without an envelope from it (replication write fan-out).  Stale
        summaries for the site are dropped immediately, so a replica
        mutated elsewhere can never satisfy rule-B suppression here.
        No-op when caching is off."""
        if self._cache is not None:
            self._cache.observe_epoch(site, epoch)

    @property
    def has_work(self) -> bool:
        if self.inbox:
            return True
        if self._batcher is not None and self._batcher.has_pending:
            return True
        return any(ctx.busy for ctx in self.contexts.values())

    @property
    def work_depth(self) -> int:
        """This site's work-queue depth: unhandled messages plus pending
        work items across every context.  The quantity the QoS watermarks
        (backpressure and shedding) are compared against."""
        depth = len(self.inbox)
        for ctx in self.contexts.values():
            depth += ctx.execution.pending
        return depth

    # ------------------------------------------------------------------
    # QoS: backpressure, shedding, weighted-fair drain (see docs/QOS.md)
    # ------------------------------------------------------------------

    def _qos_refresh_pressure(self) -> None:
        """Re-evaluate this site's backpressure state with hysteresis."""
        qos = self.qos
        if qos is None or qos.high_watermark is None:
            return
        depth = self.work_depth
        if self._pressure_state == 0 and depth >= qos.high_watermark:
            self._pressure_state = 1
            self.stats.backpressure_transitions += 1
            if self.metrics is not None:
                self.metrics.counter("qos.backpressure_transitions_total", site=self.site).inc()
        elif self._pressure_state == 1 and depth <= qos.low_watermark:
            self._pressure_state = 0

    def _qos_should_shed(self, ctx: QueryContext) -> bool:
        """Shed this arriving remote work item instead of admitting it?

        Only batch-class work is shed (unless ``shed_interactive`` is
        set), and only while the local work queue sits at or above the
        shed watermark.  Seeds installed by a local submit are never
        shed — admission control (the token bucket) governs those.
        """
        qos = self.qos
        if qos is None or qos.shed_watermark is None:
            return False
        if ctx.priority != "batch" and not qos.shed_interactive:
            return False
        return self.work_depth >= qos.shed_watermark

    def _qos_shed(self, ctx: QueryContext) -> None:
        """Account one shed work item (its credit was already absorbed)."""
        self.stats.work_shed += 1
        if self.metrics is not None:
            self.metrics.counter("qos.work_shed_total", site=self.site).inc()
        if self.tracer is not None:
            self.tracer.emit(self.site, "shed", ctx.qid, parent=self._step_span)
        if ctx.is_originator:
            ctx.saw_shed = True
        else:
            ctx.shed_pending += 1

    def _qos_adopt_priority(self, ctx: QueryContext, env: Envelope) -> None:
        """Adopt the service class a work envelope carries for its query."""
        if self.qos is not None and env.priority is not None:
            ctx.priority = env.priority

    def step(self) -> StepReport:
        """Do one unit of work: handle one message, or process one object."""
        if self.inbox:
            return self._handle_message(self.inbox.popleft())
        ctx = self._next_busy_context()
        if ctx is not None:
            return self._process_one(ctx)
        if self._batcher is not None and self._batcher.has_pending:
            # Idle force-flush: nothing else to do, so everything queued
            # goes out now (keeps ``has_work`` truthful — queued items
            # carry termination credit that must reach the originator).
            self._step_span = None  # causality comes from the queued items
            report = StepReport()
            self._flush_pending(self._batcher.pending_work(), report, "idle")
            self._flush_results(self._batcher.pending_results(), report, "idle")
            return report
        return StepReport()

    def flush_due(self, now: Optional[float] = None) -> StepReport:
        """Timer flush: send queues older than the linger window.

        Real transports call this periodically from their site loops; the
        simulator never needs to (its drain/idle flushes are immediate in
        virtual time).
        """
        report = StepReport()
        if self._batcher is None:
            return report
        self._step_span = None  # timer pops have no ambient step; items carry causes
        if now is None:
            now = self.now_fn()
        self._flush_pending(self._batcher.due_work(now), report, "timer")
        self._flush_results(self._batcher.due_results(now), report, "timer")
        return report

    def run_to_idle(self, max_steps: int = 1_000_000) -> StepReport:
        """Drive steps until idle, merging reports (single-node use/tests)."""
        total = StepReport()
        for _ in range(max_steps):
            if not self.has_work:
                return total
            report = self.step()
            total.elapsed += report.elapsed
            total.outgoing.extend(report.outgoing)
            total.completed.extend(report.completed)
        raise HyperFileError(f"node {self.site} did not go idle in {max_steps} steps")

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def _handle_message(self, env: Envelope) -> StepReport:
        payload = env.payload
        if self._cache is not None and env.src_epoch is not None:
            # Every envelope piggybacks its sender's store epoch; a newer
            # one invalidates any summary held for that site.
            self._cache.observe_epoch(env.src, env.src_epoch)
            qid = getattr(payload, "qid", None)
            if qid is not None and not isinstance(qid, str):
                # A query-bearing envelope is also a same-query freshness
                # witness: suppression toward env.src is allowed for this
                # query only against a summary at exactly this epoch.
                self._cache.confirm_epoch(qid, env.src, env.src_epoch)
        self.stats.count_received(type(payload).__name__, env.size_bytes)
        if self.metrics is not None:
            self.metrics.counter("node.messages_received_total", site=self.site).inc()
            self.metrics.gauge("node.inbox_depth", site=self.site).set(len(self.inbox))
        if self.qos is not None:
            if env.pressure is not None:
                # The sender's backpressure state piggybacks on every
                # envelope; track it so our sends toward that site throttle.
                if env.pressure:
                    self._pressured.add(env.src)
                else:
                    self._pressured.discard(env.src)
            self._qos_refresh_pressure()
            if self.metrics is not None:
                self.metrics.gauge("qos.queue_depth", site=self.site).set(self.work_depth)
                self.metrics.gauge("qos.send_queue_depth", site=self.site).set(
                    self._batcher.total_queued if self._batcher is not None else 0
                )
        if self.tracer is not None:
            detail: Dict[str, Any] = {"msg": type(payload).__name__, "src": env.src}
            credit = _credit_detail(payload)
            if credit is not None:
                detail["credit"] = credit
            self._step_span = self.tracer.emit(
                self.site, "recv", getattr(payload, "qid", ""),
                parent=env.spans[0] if env.spans else None, **detail,
            )
        if isinstance(payload, DerefRequest):
            return self._handle_deref(env, payload)
        if isinstance(payload, BatchedQuery):
            return self._handle_batched_query(env, payload)
        if isinstance(payload, ResultBatch):
            return self._handle_result(env, payload)
        if isinstance(payload, BatchedResults):
            return self._handle_batched_results(env, payload)
        if isinstance(payload, ControlMessage):
            return self._handle_control(env, payload)
        if isinstance(payload, SeedFromSaved):
            return self._handle_seed_from_saved(env, payload)
        if isinstance(payload, Undeliverable):
            return self._handle_undeliverable(payload)
        if isinstance(payload, PurgeContext):
            return self._handle_purge(payload)
        if isinstance(payload, FetchRequest):
            return self._handle_fetch_request(env, payload)
        if isinstance(payload, FetchReply):
            return self._handle_fetch_reply(payload)
        if isinstance(payload, Heartbeat):
            return self._handle_heartbeat(payload)
        raise HyperFileError(f"site {self.site}: unhandled message {type(payload).__name__}")

    def _handle_heartbeat(self, msg: Heartbeat) -> StepReport:
        """Account a delivered gossip frame.

        The evidence itself was merged at arrival (see :meth:`on_message`);
        this step pays the receipt cost and stamps the trace.
        """
        if self.tracer is not None:
            self.tracer.emit(
                self.site, "heartbeat", "",
                origin=msg.origin, entries=len(msg.counters), parent=self._step_span,
            )
        return StepReport(elapsed=self.costs.msg_recv_s)

    def _handle_deref(self, env: Envelope, msg: DerefRequest) -> StepReport:
        report = StepReport(elapsed=self.costs.msg_recv_s)
        ctx = self._context_for_work(msg.qid, msg.program, msg.term)
        if ctx is None or ctx.done:
            # The deadline fired (or the query id was reused) while this
            # work was in flight; the client already has the (partial)
            # result — drop the branch.
            self.stats.late_messages += 1
            return report
        self._qos_adopt_priority(ctx, env)
        if self._qos_should_shed(ctx):
            # Load shed: absorb the item's termination credit exactly as
            # an admission would (it returns to the originator with the
            # next drain, so conservation stays exact), but drop the item
            # itself and stamp the loss on the drain (``#shed``) so the
            # originator marks the outcome partial.
            self._absorb_controls(
                report,
                self.termination.on_recv_work(ctx.term_state, dict(msg.term), env.src, ctx.busy),
                msg.qid,
            )
            self._qos_shed(ctx)
            self._drain_if_idle(ctx, report)
            return report
        target = self._route(msg.item.oid)
        if target != self.site and self.is_site_up(target):
            # The object migrated away (or the sender used a stale hint):
            # absorb the detector state, then re-forward the request.
            self._absorb_controls(
                report,
                self.termination.on_recv_work(ctx.term_state, dict(msg.term), env.src, ctx.busy),
                msg.qid,
            )
            self._send_work(ctx, target, msg.item, report, tried=env.tried or ())
            self.stats.forwarded_requests += 1
        else:
            if not ctx.execution.mark_table.should_process(
                msg.item.oid, msg.item.start, msg.item.iters
            ):
                # This request asks us to re-process something we already
                # did — the message a global mark table would have saved
                # (paper §3.2 argues the savings are not worth the
                # coordination; ablation A1 quantifies them).
                self.stats.duplicate_requests += 1
            ctx.execution.admit(msg.item)
            if self._step_span is not None:
                self._item_spans[(msg.qid, item_key(msg.item))] = self._step_span
            self._enqueue_rr(msg.qid)
            self._absorb_controls(
                report,
                self.termination.on_recv_work(ctx.term_state, dict(msg.term), env.src, ctx.busy),
                msg.qid,
            )
        self._drain_if_idle(ctx, report)
        return report

    def _handle_batched_query(self, env: Envelope, msg: BatchedQuery) -> StepReport:
        """Unbatch a coalesced frame: each item is ingested exactly as if
        its DerefRequest had arrived alone, but the receive overhead is
        one header plus a per-item marginal (the point of batching)."""
        report = StepReport(
            elapsed=self.costs.msg_recv_s
            + self.costs.batch_item_recv_s * (len(msg.items) - 1)
        )
        ctx = self._context_for_work(
            msg.qid, msg.program, msg.terms[0] if msg.terms else {}
        )
        batch_span: Optional[int] = None
        if self.tracer is not None:
            batch_span = self.tracer.emit(
                self.site, "batch_recv", msg.qid,
                parent=env.spans[0] if env.spans else None,
                src=env.src, items=len(msg.items), hints=len(msg.marked_hints),
            )
            self._step_span = batch_span
        if ctx is None or ctx.done:
            self.stats.late_messages += 1
            return report
        if self._batcher is not None and msg.marked_hints:
            # The sender's recent marks: anything listed is already
            # processed there, so never send it back.
            self._batcher.record_remote_marks(msg.qid, env.src, msg.marked_hints)
        self.stats.batched_items += len(msg.items)
        self._qos_adopt_priority(ctx, env)
        for index, (item, term) in enumerate(zip(msg.items, msg.terms)):
            # Per-item cause: the sender's step that enqueued this item
            # (rides as spans[1:]); the batch_recv itself is the fallback.
            cause = batch_span
            if env.spans is not None and len(env.spans) > 1 + index:
                sender_cause = env.spans[1 + index]
                if sender_cause:
                    cause = sender_cause
            if self._qos_should_shed(ctx):
                # Same shed-with-exact-credit path as the unbatched frame,
                # applied per item (earlier admissions in this very batch
                # may already have pushed the depth over the watermark).
                self._absorb_controls(
                    report,
                    self.termination.on_recv_work(ctx.term_state, dict(term), env.src, ctx.busy),
                    msg.qid,
                )
                self._qos_shed(ctx)
                continue
            target = self._route(item.oid)
            if target != self.site and self.is_site_up(target):
                self._absorb_controls(
                    report,
                    self.termination.on_recv_work(ctx.term_state, dict(term), env.src, ctx.busy),
                    msg.qid,
                )
                self._send_work(ctx, target, item, report, cause=cause, tried=env.tried or ())
                self.stats.forwarded_requests += 1
            else:
                if not ctx.execution.mark_table.should_process(item.oid, item.start, item.iters):
                    self.stats.duplicate_requests += 1
                ctx.execution.admit(item)
                if cause is not None:
                    self._item_spans[(msg.qid, item_key(item))] = cause
                self._enqueue_rr(msg.qid)
                self._absorb_controls(
                    report,
                    self.termination.on_recv_work(ctx.term_state, dict(term), env.src, ctx.busy),
                    msg.qid,
                )
        self._drain_if_idle(ctx, report)
        return report

    def _handle_result(self, env: Envelope, msg: ResultBatch) -> StepReport:
        ctx = self.contexts.get(msg.qid)
        if ctx is None or not ctx.is_originator or ctx.final is None:
            raise HyperFileError(
                f"site {self.site} received results for {msg.qid} it did not originate"
            )
        if self._cache is not None and msg.summary is not None:
            # Piggybacked reachability summary: useful whatever the fate
            # of the batch itself (it describes the peer, not the query).
            self._cache.record_summary(msg.summary)
        elapsed = self.costs.result_msg_fixed_s + self.costs.result_item_s * msg.item_count
        if ctx.done or msg.term.get("#inc", 1) != ctx.incarnation:
            # Deadline already fired (or detector already terminated, or
            # this batch belongs to a previous run of a reused query id):
            # the client holds the result; ingesting more would mutate it
            # behind their back and could over-recover credit.  The batch
            # still occupies the CPU for its full receive-and-parse cost.
            self.stats.late_messages += 1
            return StepReport(elapsed=elapsed)
        report = StepReport(elapsed=elapsed)
        ctx.participants.add(env.src)
        if self._cache is not None:
            # The answer now depends on env.src's store as of its current
            # epoch (None or ambiguous epochs poison the footprint).
            self._cache.note_result_dep(msg.qid, env.src, env.src_epoch)
        if msg.count_only:
            ctx.partition_counts[env.src] = ctx.partition_counts.get(env.src, 0) + msg.count
        else:
            for oid in msg.oids:
                ctx.final.oids.add(oid)
        for target, value in msg.emissions:
            ctx.final.retrieved.setdefault(target, []).append(value)
        if ctx.first_result_at is None and (msg.item_count or msg.count):
            ctx.first_result_at = self.now_fn()
        if msg.term.get("#shed"):
            # A participant shed work for this query under overload; the
            # final result is partial however much credit comes home.
            ctx.saw_shed = True
        self.termination.on_result(ctx.term_state, dict(msg.term))
        self._check_termination(ctx, report)
        return report

    def _handle_batched_results(self, env: Envelope, msg: BatchedResults) -> StepReport:
        """Ingest a coalesced results frame: each inner batch exactly as
        if it arrived alone, with the fixed receive overhead paid once."""
        report = StepReport()
        for index, batch in enumerate(msg.batches):
            inner = self._handle_result(env, batch)
            report.elapsed += inner.elapsed
            if index > 0:
                # Replace the per-message fixed overhead with the batched
                # per-item marginal for every inner batch after the first.
                report.elapsed += self.costs.batch_item_recv_s - self.costs.result_msg_fixed_s
            report.outgoing.extend(inner.outgoing)
            report.completed.extend(inner.completed)
        return report

    def _handle_control(self, env: Envelope, msg: ControlMessage) -> StepReport:
        ctx = self.contexts.get(msg.qid)
        if ctx is None:
            raise TerminationProtocolError(
                f"site {self.site} got control {msg.kind!r} for unknown query {msg.qid}"
            )
        if ctx.done:
            # Post-deadline ack: the ledger was already written off.
            self.stats.late_messages += 1
            return StepReport(elapsed=self.costs.msg_recv_s)
        report = StepReport(elapsed=self.costs.msg_recv_s)
        outs = self.termination.on_control(ctx.term_state, msg.kind, msg.payload, env.src, ctx.busy)
        self._absorb_controls(report, outs, msg.qid)
        if ctx.is_originator:
            self._check_termination(ctx, report)
        return report

    def _handle_seed_from_saved(self, env: Envelope, msg: SeedFromSaved) -> StepReport:
        report = StepReport(elapsed=self.costs.msg_recv_s)
        ctx = self._context_for_work(msg.qid, msg.program, msg.term)
        if ctx is None or ctx.done:
            self.stats.late_messages += 1
            return report
        for oid in self.saved_partition(msg.source_qid):
            item = WorkItem(oid=oid, start=1)
            ctx.execution.admit(item)
            if self._step_span is not None:
                self._item_spans[(msg.qid, item_key(item))] = self._step_span
        self._enqueue_rr(msg.qid)
        self._absorb_controls(
            report,
            self.termination.on_recv_work(ctx.term_state, dict(msg.term), env.src, ctx.busy),
            msg.qid,
        )
        self._drain_if_idle(ctx, report)
        return report

    def _handle_fetch_request(self, env: Envelope, msg: FetchRequest) -> StepReport:
        report = StepReport(elapsed=self.costs.msg_recv_s)
        target = self._route(msg.oid)
        if target != self.site and self.is_site_up(target):
            # Stale hint or migrated object: chase it (naming §4).
            self._emit(report, target, msg)
            self.stats.forwarded_requests += 1
            return report
        try:
            obj = self.store.get(msg.oid)
        except ObjectNotFound:
            obj = None
        self._emit(report, msg.reply_to or env.src, FetchReply(msg.request_id, obj))
        return report

    def _handle_fetch_reply(self, msg: FetchReply) -> StepReport:
        self.fetch_results[msg.request_id] = msg.obj
        return StepReport(elapsed=self.costs.msg_recv_s)

    def _handle_purge(self, msg: PurgeContext) -> StepReport:
        report = StepReport(elapsed=self.costs.msg_recv_s)
        ctx = self.contexts.get(msg.qid)
        if ctx is not None and not ctx.busy and not ctx.is_originator:
            self._retire_context(msg.qid)
        return report

    def _handle_undeliverable(self, msg: Undeliverable) -> StepReport:
        """A work message we sent bounced off a down site.

        Recover the termination state it carried, then — when the object
        is replicated — fail the work over to the next live holder the
        bounce has not tried yet (the envelope's ``tried`` hint carries
        the attempted set across hops).  Each re-routed send splits
        *fresh* credit, so recovery + re-split keeps the weighted
        detector's conservation exact.  Work with no remaining live
        replica is abandoned, exactly the unreplicated behaviour
        (partial results, clean termination)."""
        report = StepReport(elapsed=self.costs.msg_recv_s)
        original = msg.original.payload
        ctx = self.contexts.get(original.qid)
        if ctx is None:
            raise HyperFileError(
                f"site {self.site} got a bounce for unknown query {original.qid}"
            )
        if isinstance(original, BatchedQuery):
            term0 = original.terms[0] if original.terms else {}
        else:
            term0 = getattr(original, "term", None) or {}
        if ctx.done or term0.get("#inc", 1) != ctx.incarnation:
            # Ledger already written off, or the bounce belongs to a
            # previous run of a reused query id.
            self.stats.late_messages += 1
            return report
        excl = set(msg.original.tried or ()) | {msg.original.dst}
        if isinstance(original, BatchedQuery):
            # A whole batch bounced: recover every item's credit, and
            # un-record the items so a re-discovered branch is not
            # suppressed against a site that never processed it.
            if self._batcher is not None:
                self._batcher.forget_sent(original.qid, msg.original.dst, original.items)
            for item, term in zip(original.items, original.terms):
                outs = self.termination.on_send_failed(ctx.term_state, dict(term), ctx.busy)
                self._absorb_controls(report, outs, original.qid)
                if not self._failover(ctx, item, excl, report):
                    self.stats.failed_sends += 1
                    ctx.abandoned += 1
        else:
            if self._batcher is not None and isinstance(original, DerefRequest):
                self._batcher.forget_sent(original.qid, msg.original.dst, (original.item,))
            outs = self.termination.on_send_failed(ctx.term_state, dict(original.term), ctx.busy)
            self._absorb_controls(report, outs, original.qid)
            if not (
                isinstance(original, DerefRequest)
                and self._failover(ctx, original.item, excl, report)
            ):
                # SeedFromSaved never fails over: the saved partition
                # lives only at the bounced site.
                self.stats.failed_sends += 1
                ctx.abandoned += 1
        self._drain_if_idle(ctx, report)
        if ctx.is_originator:
            self._check_termination(ctx, report)
        return report

    def _failover(
        self,
        ctx: QueryContext,
        item: WorkItem,
        excl: set,
        report: StepReport,
        cause: Optional[int] = None,
    ) -> bool:
        """Re-route one bounced work item to a replica outside ``excl``.

        A local replica admits the item straight into the working set (no
        message); a remote live holder gets a fresh send — new credit is
        split inside :meth:`_send_work` and the envelope's ``tried`` hint
        carries ``excl`` so a second bounce keeps excluding dead holders
        (no ping-pong between two down sites).  Returns ``False`` when no
        un-tried live replica remains; the caller abandons the branch.
        """
        alt = self._next_replica(item.oid, excl)
        if alt is None:
            return False
        self.stats.replica_failovers += 1
        if alt == self.site:
            self.stats.replica_local_serves += 1
            ctx.execution.admit(item)
            span = cause if cause is not None else self._step_span
            if span is not None:
                self._item_spans[(ctx.qid, item_key(item))] = span
            self._enqueue_rr(ctx.qid)
            return True
        self._send_work(ctx, alt, item, report, cause=cause, tried=tuple(sorted(excl)))
        return True

    # ------------------------------------------------------------------
    # object processing
    # ------------------------------------------------------------------

    def _process_one(self, ctx: QueryContext) -> StepReport:
        report = StepReport()
        outcome = ctx.execution.step()
        if self.tracer is not None:
            # Parent on the step that admitted this exact item; fall back
            # to the context's root span (duplicate admissions overwrite
            # the per-item entry) so the tree stays connected regardless.
            cause = self._item_spans.pop((ctx.qid, item_key(outcome.item)), None)
            if cause is None:
                cause = ctx.root_span
            if outcome.admitted and not outcome.missing:
                self._step_span = self.tracer.emit(
                    self.site, "process", ctx.qid, parent=cause,
                    oid=str(outcome.item.oid), start=outcome.item.start,
                    passed=outcome.into_result, remote=len(outcome.remote),
                )
                if self._step_span is not None:
                    for spawned in outcome.local_items:
                        self._item_spans[(ctx.qid, item_key(spawned))] = self._step_span
            else:
                if not outcome.admitted:
                    self.tracer.emit(
                        self.site, "skip", ctx.qid, parent=cause, oid=str(outcome.item.oid)
                    )
                self._step_span = cause
        if not outcome.admitted:
            report.elapsed += self.costs.mark_check_s
            self.stats.marked_skips += 1
        elif outcome.missing:
            report.elapsed += self.costs.mark_check_s
        else:
            if outcome.from_cache:
                # Replayed from the fragment cache: no filter evaluation,
                # no store read — just the (much cheaper) replay.
                report.elapsed += self.costs.cache_hit_s
            else:
                report.elapsed += self.costs.object_process_s
            self.stats.objects_processed += 1
            if outcome.into_result:
                report.elapsed += self.costs.result_insert_s
        for dst, item in outcome.remote:
            self._send_work(ctx, dst, item, report)
        self._drain_if_idle(ctx, report)
        return report

    # ------------------------------------------------------------------
    # drains, sends, termination
    # ------------------------------------------------------------------

    def _send_work(
        self,
        ctx: QueryContext,
        dst: str,
        item: WorkItem,
        report: StepReport,
        cause: Optional[int] = None,
        tried: Tuple[str, ...] = (),
    ) -> None:
        if not self.is_site_up(dst):
            # Replication first: another live holder can still serve the
            # dereference (read anycast), so try that before abandoning.
            if self._failover(ctx, item, {*tried, dst}, report, cause=cause):
                return
            # Autonomy requirement: a down site must not hang the query.
            # The dereference is abandoned (partial results) and, because
            # no detector state was split off, termination stays exact.
            self.stats.failed_sends += 1
            ctx.abandoned += 1
            return
        if cause is None:
            cause = self._step_span
        if (
            self._cache is not None
            and not (self.replicas is not None and self.replicas.holds(dst, item.oid))
            and self._cache.should_suppress(
                ctx.qid, dst, item, self._closure_keys.get(ctx.qid)
            )
        ):
            # Bloom pruning, *before* any credit is split: the summary
            # proves the message could not produce marks, results, or
            # spawns at the far end, so dropping it is indistinguishable
            # (to the detector) from a mark-table skip.  The replica
            # directory overrides the summary: a directory-listed holder
            # *does* store the object (writes fan out synchronously and
            # bump the version), so suppression's premise — "dst cannot
            # know this object" — is refuted and the send must go out.
            self.stats.sends_suppressed_bloom += 1
            return
        batcher = self._batcher
        if batcher is None:
            attach = self.termination.on_send_work(ctx.term_state)
            self._emit(
                report, dst,
                DerefRequest(ctx.qid, ctx.execution.program, item, self._stamp_inc(ctx, attach)),
                cause=cause, tried=tried,
            )
            return
        # Dedup before splitting credit: a suppressed send is then
        # indistinguishable (to the detector) from a mark-table skip.
        mark_key = ctx.execution.mark_table.key_for(item.start, item.iters)
        if batcher.already_sent(ctx.qid, dst, item) or batcher.known_marked(
            ctx.qid, dst, item.oid.key(), mark_key
        ):
            self.stats.sends_suppressed += 1
            return
        attach = self.termination.on_send_work(ctx.term_state)
        batcher.record_sent(ctx.qid, dst, item)
        pending = batcher.enqueue_work(
            ctx.qid, dst, item, self._stamp_inc(ctx, attach), self.now_fn(),
            span=cause, tried=tried,
        )
        threshold = self.batching.max_batch
        if self.qos is not None and dst in self._pressured:
            # Backpressure response: hold work for a pressured site in
            # larger batches (drain/idle flushes still go out, so credit
            # liveness is untouched — only the *size* trigger defers).
            threshold *= self.qos.pressure_batch_factor
            if self.batching.max_batch <= pending < threshold:
                self.stats.sends_throttled += 1
                if self.metrics is not None:
                    self.metrics.counter("qos.sends_throttled_total", site=self.site).inc()
        if pending >= threshold:
            self._flush_work(ctx.qid, dst, report, "size")

    def _flush_work(self, qid: QueryId, dst: str, report: StepReport, reason: str) -> int:
        """Flush one (query, destination) send queue into a frame.

        Returns the number of items whose credit had to be *recovered*
        instead of sent (destination down at flush time); callers that may
        be the last event before idleness use it to re-run drain logic so
        recovered credit still reaches the originator.
        """
        batcher = self._batcher
        assert batcher is not None
        items, terms, spans, tried = batcher.take_work(qid, dst)
        if not items:
            return 0
        ctx = self.contexts.get(qid)
        if ctx is None or ctx.done:
            # The deadline (or a purge) raced the queue; the ledger was
            # already written off, so the items are simply dropped.
            self.stats.late_messages += len(items)
            return 0
        if not self.is_site_up(dst):
            # The destination went down between enqueue and flush: take
            # every item's credit back (exactly the undeliverable path),
            # then fail each item over to another live replica if one
            # exists — only replica-less items stay abandoned.
            batcher.forget_sent(qid, dst, items)
            excl = {*tried, dst}
            recovered = 0
            for item, term, span in zip(items, terms, spans):
                outs = self.termination.on_send_failed(ctx.term_state, dict(term), ctx.busy)
                self._absorb_controls(report, outs, qid)
                if self._failover(ctx, item, excl, report, cause=span):
                    continue
                self.stats.failed_sends += 1
                ctx.abandoned += 1
                recovered += 1
            return recovered
        counter = "batch_flushes_" + reason
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        if len(items) == 1:
            # No coalescing happened; ship the plain single-item form.
            # Mark hints are piggyback-only — they never upgrade a lone
            # item into the (more expensive) batched frame, so workloads
            # with nothing to coalesce keep the unbatched cost exactly.
            self._emit(
                report, dst,
                DerefRequest(qid, ctx.execution.program, items[0], dict(terms[0])),
                cause=spans[0], tried=tried,
            )
            return 0
        hints = batcher.take_hints(qid, dst, ctx.execution.mark_table)
        self.stats.batched_items += len(items)
        if self.metrics is not None:
            self.metrics.histogram("batching.batch_size_items").observe(len(items))
        flush_span: Optional[int] = None
        if self.tracer is not None:
            # The flush descends from the first traced item in the queue;
            # the frame's send then descends from the flush, and the
            # per-item causes ride the envelope for the receiver to fan.
            first_cause = next((s for s in spans if s is not None), None)
            flush_span = self.tracer.emit(
                self.site, "batch_flush", qid, parent=first_cause,
                dst=dst, items=len(items), hints=len(hints), reason=reason,
            )
        self._emit(
            report, dst,
            BatchedQuery(qid, ctx.execution.program, items, terms, hints),
            cause=flush_span, item_causes=spans, tried=tried,
        )
        return 0

    def _flush_pending(self, keys: List[Tuple[QueryId, str]], report: StepReport, reason: str) -> None:
        """Flush a set of work queues (idle/timer paths), then re-run the
        drain logic for any query whose credit was recovered from a down
        destination — it must not sit at a passive site."""
        by_qid: Dict[QueryId, List[str]] = {}
        for qid, dst in keys:
            by_qid.setdefault(qid, []).append(dst)
        for qid, dsts in by_qid.items():
            recovered = 0
            for dst in dsts:
                recovered += self._flush_work(qid, dst, report, reason)
            ctx = self.contexts.get(qid)
            if recovered and ctx is not None and not ctx.done:
                self._drain_if_idle(ctx, report)
                if ctx.is_originator:
                    self._check_termination(ctx, report)

    def _flush_results(self, dsts: List[str], report: StepReport, reason: str) -> None:
        batcher = self._batcher
        assert batcher is not None
        for dst in dsts:
            batches, spans = batcher.take_results(dst)
            if not batches:
                continue
            counter = "batch_flushes_" + reason
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
            if len(batches) == 1:
                self._emit(report, dst, batches[0], cause=spans[0])
                continue
            if self.metrics is not None:
                self.metrics.histogram("batching.batch_size_items").observe(len(batches))
            flush_span: Optional[int] = None
            if self.tracer is not None:
                first_cause = next((s for s in spans if s is not None), None)
                flush_span = self.tracer.emit(
                    self.site, "batch_flush", batches[0].qid, parent=first_cause,
                    dst=dst, items=len(batches), reason=reason, results=True,
                )
            self._emit(
                report, dst, BatchedResults(batches),
                cause=flush_span, item_causes=spans,
            )

    def _emit_result(
        self, report: StepReport, dst: str, batch: ResultBatch, cause: Optional[int] = None
    ) -> None:
        """Ship (or, with a linger window, queue) one outbound ResultBatch."""
        if cause is None:
            cause = self._step_span
        batcher = self._batcher
        if (
            batcher is None
            or not self.batching.coalesce_results
            or self.batching.linger_s is None
            or not self.is_site_up(dst)
        ):
            self._emit(report, dst, batch, cause=cause)
            return
        pending = batcher.enqueue_result(dst, batch, self.now_fn(), span=cause)
        if pending >= self.batching.max_batch:
            self._flush_results([dst], report, "size")

    def _drain_if_idle(self, ctx: QueryContext, report: StepReport) -> None:
        if ctx.busy:
            return
        if self._batcher is not None:
            # Liveness: queued work carries credit; when this query's
            # working set drains here, everything pending for it must go.
            for dst in self._batcher.work_destinations(ctx.qid):
                self._flush_work(ctx.qid, dst, report, "drain")
        drain_span: Optional[int] = None
        if ctx.is_originator:
            self._merge_local_results(ctx)
            self.termination.on_originator_drain(ctx.term_state)
            ctx.drains += 1
            self.stats.drains += 1
            if self.tracer is not None:
                assert ctx.final is not None
                parent = self._step_span if self._step_span is not None else ctx.root_span
                self.tracer.emit(
                    self.site, "drain", ctx.qid, parent=parent, results=len(ctx.final.oids)
                )
            self._check_termination(ctx, report)
            return
        oids, emissions = ctx.take_unflushed()
        attach, controls = self.termination.on_drain(ctx.term_state)
        term = self._stamp_inc(ctx, attach)
        if ctx.shed_pending:
            # Ride the shed count home on the drain's term attachment
            # (the detector ignores keys it does not know, the codec
            # carries them verbatim); the originator flips `partial`.
            term["#shed"] = ctx.shed_pending
            ctx.shed_pending = 0
        ctx.drains += 1
        self.stats.drains += 1
        if self.tracer is not None:
            parent = self._step_span if self._step_span is not None else ctx.root_span
            drain_span = self.tracer.emit(
                self.site, "drain", ctx.qid, parent=parent, results=len(oids)
            )
        summary = None
        if self._cache is not None:
            summary = self._cache.summary_to_attach(
                ctx.qid.originator, self.store, self.forwarding
            )
        if self.result_mode == "count":
            batch = ResultBatch(
                ctx.qid,
                oids=(),
                emissions=emissions,
                count_only=True,
                count=len(oids),
                term=term,
                summary=summary,
            )
        else:
            batch = ResultBatch(
                ctx.qid,
                oids=oids,
                emissions=emissions,
                term=term,
                summary=summary,
            )
        self._emit_result(report, ctx.qid.originator, batch, cause=drain_span)
        self._absorb_controls(report, controls, ctx.qid)

    def _merge_local_results(self, ctx: QueryContext) -> None:
        assert ctx.final is not None
        oids, emissions = ctx.take_unflushed()
        if self.result_mode == "count" and oids:
            ctx.partition_counts[self.site] = ctx.partition_counts.get(self.site, 0) + len(oids)
        else:
            for oid in oids:
                ctx.final.oids.add(oid)
        for target, value in emissions:
            ctx.final.retrieved.setdefault(target, []).append(value)
        if ctx.first_result_at is None and (oids or emissions):
            ctx.first_result_at = self.now_fn()

    def _check_termination(self, ctx: QueryContext, report: StepReport) -> None:
        if ctx.done or not ctx.is_originator:
            return
        if self.termination.is_terminated(ctx.term_state, ctx.busy):
            ctx.done = True
            assert ctx.final is not None
            if ctx.saw_shed:
                # Work was shed under overload: every split credit still
                # came home (the detector fired normally), but branches
                # were dropped — the answer is partial, and must say so
                # before the cache-eligibility check below sees it.
                ctx.final.partial = True
                ctx.final.partial_reason = "shed"
            if self._cache is not None and ctx.cache_key is not None:
                if not ctx.final.partial and self.store.epoch == ctx.cache_epoch:
                    retrieved = tuple(
                        (target, value)
                        for target, values in ctx.final.retrieved.items()
                        for value in values
                    )
                    self._cache.store_query(
                        ctx.qid, ctx.cache_key, ctx.cache_epoch,
                        tuple(ctx.final.oids.as_list()), retrieved,
                    )
                else:
                    # Local store mutated mid-query (or the answer is
                    # partial): the answer is fine, but not cacheable.
                    self._cache.drop_query(ctx.qid)
            if self.tracer is not None:
                parent = self._step_span if self._step_span is not None else ctx.root_span
                self.tracer.emit(
                    self.site, "complete", ctx.qid, parent=parent,
                    results=len(ctx.final.oids),
                )
            self._stamp_slo(ctx)
            if self.gc_contexts:
                for participant in sorted(ctx.participants):
                    if participant != self.site:
                        self._emit(report, participant, PurgeContext(ctx.qid))
            # Per-site execution counters are aggregated by the cluster at
            # completion (it can reach every context); merging here would
            # double-count the originator's own.
            report.completed.append((ctx.qid, ctx.final))
            if self.on_query_complete is not None:
                self.on_query_complete(ctx.qid, ctx.final)

    def _stamp_slo(self, ctx: QueryContext) -> None:
        """Record the query's SLO watermarks at its (possibly partial)
        completion: submit→first-result and submit→complete, as
        per-tenant/per-priority histograms plus one ``slo`` trace event.
        Both sinks are optional and guarded, so the untraced unmetered
        path costs nothing beyond two ``is None`` checks."""
        if ctx.submitted_at is None or (self.metrics is None and self.tracer is None):
            return
        now = self.now_fn()
        complete_s = now - ctx.submitted_at
        if ctx.first_result_at is not None:
            first_result_s = ctx.first_result_at - ctx.submitted_at
        else:
            # No result ever landed (empty answer or total loss): the
            # first-result watermark degenerates to the completion one.
            first_result_s = complete_s
        if self.metrics is not None:
            labels = {"tenant": ctx.tenant, "priority": ctx.priority}
            self.metrics.histogram(
                "slo.first_result_s", buckets=SLO_BUCKETS, **labels
            ).observe(first_result_s)
            self.metrics.histogram(
                "slo.complete_s", buckets=SLO_BUCKETS, **labels
            ).observe(complete_s)
        if self.tracer is not None:
            self.tracer.emit(
                self.site, "slo", ctx.qid, parent=ctx.root_span,
                first_result_s=round(first_result_s, 9),
                complete_s=round(complete_s, 9),
                tenant=ctx.tenant, priority=ctx.priority,
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _ensure_context(self, qid: QueryId, program: Program) -> QueryContext:
        ctx = self.contexts.get(qid)
        if ctx is not None:
            return ctx
        is_originator = qid.originator == self.site
        execution = QueryExecution(
            program,
            self.store.get,
            site=self.site,
            locate=self._route,
            discipline=self.discipline,
            mark_granularity=self.mark_granularity,
        )
        if self._batcher is not None and self.batching.mark_hints:
            execution.mark_table.enable_journal()
        if self._cache is not None:
            if self._cache.fragments is not None:
                execution.fragment_cache = self._cache.fragments
                execution.epoch_fn = lambda: self.store.epoch
            shape = match_closure_shape(program)
            self._closure_keys[qid] = shape[0] if shape is not None else None
            if shape is not None:
                self._cache.note_pointer_key(shape[0])
        if self.tracer is not None:
            # Every outcome of this context descends (at worst) from the
            # event that created it — the submit here, the recv elsewhere —
            # which keeps the span tree connected even when a tighter
            # per-item cause was lost to a duplicate admission.
            execution.collect_spawns = True
        ctx = QueryContext(
            qid=qid,
            execution=execution,
            is_originator=is_originator,
            term_state=self.termination.new_state(self.site, is_originator),
            final=QueryResult() if is_originator else None,
            root_span=self._step_span,
            incarnation=self._incarnations.get(qid, 1),
        )
        self.contexts[qid] = ctx
        self.stats.contexts_created += 1
        return ctx

    def _context_for_work(
        self, qid: QueryId, program: Program, term: Any
    ) -> Optional[QueryContext]:
        """Resolve the context a work/seed message belongs to.

        Work messages stamp the originator's context *incarnation* (only
        when a query id was reused — the common case carries no stamp and
        defaults to 1).  A newer incarnation retires whatever stale state
        the previous run left here; an older one means the message itself
        is stale — return None so the caller drops it, exactly like work
        arriving after a deadline (its credit was already written off).
        """
        inc = term.get("#inc", 1) if hasattr(term, "get") else 1
        ctx = self.contexts.get(qid)
        if ctx is not None and inc > ctx.incarnation:
            self._retire_context(qid)
            ctx = None
        if ctx is None:
            if inc > self._incarnations.get(qid, 1):
                # First contact from a rerun: the fresh context must take
                # the message's incarnation, or the results it drains
                # back would be stamped with the old one and dropped as
                # stale by the originator.
                self._incarnations[qid] = inc
            ctx = self._ensure_context(qid, program)
        if inc < ctx.incarnation:
            return None
        return ctx

    def _retire_context(self, qid: QueryId) -> None:
        """Drop every trace of a finished/stale run of ``qid``.

        Only safe once the run's termination ledger is settled (the
        originator completed or expired it): queued sends and marks from
        the old run must not leak into a new run under the same id.
        """
        self.contexts.pop(qid, None)
        if qid in self._rr:
            self._rr.remove(qid)
        if self.qos is not None:
            for dq in self._rr_class.values():
                if qid in dq:
                    dq.remove(qid)
        if self._batcher is not None:
            self._batcher.drop_query(qid)
        if self._item_spans:
            self._drop_item_spans(qid)
        if self._cache is not None:
            self._cache.drop_query(qid)
        self._closure_keys.pop(qid, None)

    def _prepare_resubmit(self, qid: QueryId) -> None:
        """Originator side: make a reused query id safe to run again.

        Resubmitting an id still in flight is a client error.  Reusing a
        finished (typically deadline-expired) id retires the old context
        and bumps the incarnation so the new run's messages are
        distinguishable from the old run's stragglers.
        """
        ctx = self.contexts.get(qid)
        if ctx is None:
            return
        if not ctx.done:
            raise HyperFileError(f"query {qid} resubmitted while still in flight")
        self._incarnations[qid] = ctx.incarnation + 1
        self._retire_context(qid)

    def _stamp_inc(self, ctx: QueryContext, attach: Dict[str, Any]) -> Dict[str, Any]:
        """Copy a termination attachment, stamping the context incarnation.

        First incarnations (every query whose id is never reused) are not
        stamped, so their wire frames are byte-identical to before.
        """
        term = dict(attach)
        if ctx.incarnation > 1:
            term["#inc"] = ctx.incarnation
        return term

    def _emit(
        self,
        report: StepReport,
        dst: str,
        payload: Any,
        cause: Optional[int] = None,
        item_causes: Optional[Tuple[Optional[int], ...]] = None,
        tried: Tuple[str, ...] = (),
    ) -> None:
        if not self.is_site_up(dst):
            self.stats.failed_sends += 1
            return
        env_spans: Optional[Tuple[int, ...]] = None
        if self.tracer is not None:
            wire = getattr(payload, "wire_size", None)
            detail: Dict[str, Any] = {
                "msg": type(payload).__name__, "dst": dst,
                "bytes": wire() if callable(wire) else 64,
            }
            credit = _credit_detail(payload)
            if credit is not None:
                detail["credit"] = credit
            parent = cause if cause is not None else self._step_span
            send_span = self.tracer.emit(
                self.site, "send", getattr(payload, "qid", ""), parent=parent, **detail
            )
            if send_span is not None:
                # spans[0]: this send (the receiver's recv parents on it);
                # spans[1:]: per-item causes for batched frames (0 = none).
                if item_causes:
                    env_spans = (send_span, *(s or 0 for s in item_causes))
                else:
                    env_spans = (send_span,)
        priority: Optional[str] = None
        pressure: Optional[int] = None
        if self.qos is not None:
            qid = getattr(payload, "qid", None)
            qctx = self.contexts.get(qid) if isinstance(qid, QueryId) else None
            if qctx is not None:
                priority = qctx.priority
            if self.qos.high_watermark is not None:
                self._qos_refresh_pressure()
                pressure = self._pressure_state
        env = Envelope(
            self.site, dst, payload, spans=env_spans,
            src_epoch=self.store.epoch if self._cache is not None else None,
            tried=tuple(tried) if tried else None,
            priority=priority, pressure=pressure,
        )
        self.stats.count_sent(type(payload).__name__, env.size_bytes)
        if self.metrics is not None:
            self.metrics.counter("node.messages_sent_total", site=self.site).inc()
            self.metrics.counter("node.bytes_sent_total", site=self.site).inc(env.size_bytes)
        report.elapsed += self.costs.msg_send_s
        if isinstance(payload, BatchedQuery):
            # One header, per-item marginal: the calibrated batched cost.
            report.elapsed += self.costs.batch_item_send_s * (len(payload.items) - 1)
        elif isinstance(payload, BatchedResults):
            report.elapsed += self.costs.batch_item_send_s * (len(payload.batches) - 1)
        report.outgoing.append(env)

    def _absorb_controls(self, report: StepReport, outs, qid: QueryId) -> None:
        for dst, kind, payload in outs:
            self._emit(report, dst, ControlMessage(qid, kind, payload))

    def _drop_item_spans(self, qid: QueryId) -> None:
        """Forget per-item trace causes for a finished/purged query."""
        for key in [k for k in self._item_spans if k[0] == qid]:
            del self._item_spans[key]

    def _enqueue_rr(self, qid: QueryId) -> None:
        if self.qos is None:
            if qid not in self._rr:
                self._rr.append(qid)
            return
        if any(qid in dq for dq in self._rr_class.values()):
            return
        ctx = self.contexts.get(qid)
        cls = ctx.priority if ctx is not None and ctx.priority in PRIORITIES else "interactive"
        self._rr_class[cls].append(qid)

    def _next_busy_context(self) -> Optional[QueryContext]:
        if self.qos is None:
            for _ in range(len(self._rr)):
                qid = self._rr[0]
                self._rr.rotate(-1)
                ctx = self.contexts.get(qid)
                if ctx is not None and ctx.busy:
                    return ctx
            return None
        # Weighted-fair drain: each WFQ round grants interactive_weight
        # turns to interactive contexts and batch_weight to batch ones
        # (round-robin within a class, exactly the legacy rotation).  A
        # class with credits but nothing runnable forfeits its remaining
        # turns (work-conserving); when both classes are spent or empty
        # the round resets.  With a single class present this degenerates
        # to the legacy round-robin order.
        for _ in range(2):  # at most one credit refill per call
            for cls in PRIORITIES:
                if self._wfq_credits[cls] <= 0:
                    continue
                ctx = self._rotate_find(self._rr_class[cls])
                if ctx is not None:
                    self._wfq_credits[cls] -= 1
                    return ctx
                self._wfq_credits[cls] = 0
            if any(self._wfq_credits.values()):
                break
            self._wfq_credits["interactive"] = self.qos.interactive_weight
            self._wfq_credits["batch"] = self.qos.batch_weight
        return None

    def _rotate_find(self, dq: Deque[QueryId]) -> Optional[QueryContext]:
        for _ in range(len(dq)):
            qid = dq[0]
            dq.rotate(-1)
            ctx = self.contexts.get(qid)
            if ctx is not None and ctx.busy:
                return ctx
        return None
