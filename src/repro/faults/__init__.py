"""Fault injection and fault tolerance for the HyperFile transports.

The paper's autonomy requirement — "lack of cooperation from one node
must not shut down the entire service" — is scripted in the seed repo as
*known-down* sites only: the sender consults an availability oracle and
abandons the branch.  Real networks also lose, duplicate, reorder and
delay messages, and the credit-recovery termination detector silently
deadlocks (lost credit) or raises (duplicated credit) the moment that
happens.  This package supplies both halves of the answer:

* :class:`~repro.faults.plan.FaultPlan` — a deterministic, seed-driven
  chaos schedule (per-message drop/duplicate/reorder/delay decisions,
  link partitions, timed transient site crashes) that all three
  transports consult through one injection hook;
* :class:`~repro.faults.reliable.ReliableEndpoint` — an end-to-end
  reliable-delivery layer (per-link sequence numbers, acks, capped
  exponential-backoff retransmit, receive-side dedup) that restores the
  exactly-once delivery the detectors' conservation invariants assume.

See ``docs/FAULTS.md`` for the failure model: what is recoverable, what
is not, and why.
"""

from .plan import FaultDecision, FaultPlan, LinkFaults, SiteCrash
from .reliable import ReliableAck, ReliableConfig, ReliableData, ReliableEndpoint
from .timers import TimerThread

__all__ = [
    "FaultDecision",
    "FaultPlan",
    "LinkFaults",
    "SiteCrash",
    "ReliableAck",
    "ReliableConfig",
    "ReliableData",
    "ReliableEndpoint",
    "TimerThread",
]
