"""A single-thread timer wheel for the wall-clock transports.

The simulated transport schedules retransmits and delayed deliveries on
the discrete-event queue; the threaded and socket transports need real
timers.  ``threading.Timer`` spawns one thread per timer — far too heavy
when every in-flight message arms a retransmit — so this module provides
one daemon thread driving a binary heap of (deadline, callback) entries,
mirroring :class:`repro.sim.kernel.Simulator`'s cancel semantics.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List


@dataclass(order=True)
class _TimerEntry:
    deadline: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class TimerHandle:
    """Returned by :meth:`TimerThread.schedule`; mirrors the simulator's
    :class:`~repro.sim.kernel.EventHandle` so the reliable channel can
    treat both clocks uniformly."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _TimerEntry) -> None:
        self._entry = entry

    def cancel(self) -> None:
        self._entry.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled


class TimerThread:
    """One daemon thread firing scheduled callbacks at wall-clock times."""

    def __init__(self, name: str = "hf-timers") -> None:
        self._heap: List[_TimerEntry] = []
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._stopped = False
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    def now(self) -> float:
        return time.monotonic()

    def schedule(self, delay_s: float, action: Callable[[], None]) -> TimerHandle:
        """Run ``action`` on the timer thread after ``delay_s`` seconds."""
        entry = _TimerEntry(time.monotonic() + max(0.0, delay_s), next(self._seq), action)
        with self._cond:
            if self._stopped:
                raise RuntimeError("timer thread is stopped")
            heapq.heappush(self._heap, entry)
            self._cond.notify()
        return TimerHandle(entry)

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._heap.clear()
            self._cond.notify()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._stopped and (
                    not self._heap or self._heap[0].deadline > time.monotonic()
                ):
                    if self._heap:
                        self._cond.wait(max(0.0, self._heap[0].deadline - time.monotonic()))
                    else:
                        self._cond.wait()
                if self._stopped:
                    return
                entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            try:
                entry.action()
            except Exception:  # noqa: BLE001 — a timer callback must not kill the wheel
                pass
