"""End-to-end reliable delivery over a lossy transport.

The termination detectors assume exactly-once delivery: the weighted
scheme's credit is *lost* with a dropped message (the query never
terminates) and *duplicated* with a replayed one (conservation raises).
This channel restores that assumption the way TCP does, one layer down
from the query protocol:

* every application envelope on a link ``src → dst`` is wrapped in a
  :class:`ReliableData` frame carrying a per-link sequence number;
* the receiver acknowledges every data frame (:class:`ReliableAck`) and
  delivers each sequence number **once** — replays are acked again (the
  first ack may itself have been lost) but not re-delivered;
* the sender buffers unacked frames and retransmits on a capped
  exponential backoff; after ``max_retries`` attempts it gives up and
  hands the original envelope to ``on_give_up`` so the sender's node can
  recover the detector state exactly as it does for an
  :class:`~repro.net.messages.Undeliverable` bounce.

Acks and retransmits travel through the same faulty wire as everything
else — a lost ack simply provokes a retransmit, which the dedup absorbs.

The channel deliberately does **not** re-order: per-link FIFO would not
fix the one known ordering hazard anyway (the Dijkstra–Scholten
ack/result race crosses *different* links — see docs/FAULTS.md).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Set, Tuple

if TYPE_CHECKING:  # imported lazily at runtime: repro.net imports this module
    from ..net.messages import Envelope
else:
    Envelope = None  # bound on first ReliableEndpoint construction


def _envelope_type():
    global Envelope
    if Envelope is None:
        from ..net.messages import Envelope as _Envelope

        Envelope = _Envelope
    return Envelope


@dataclass(frozen=True)
class ReliableData:
    """A sequenced application payload on one ``src → dst`` link."""

    seq: int
    payload: Any

    def wire_size(self) -> int:
        wire = getattr(self.payload, "wire_size", None)
        inner = wire() if callable(wire) else 64
        return inner + 8  # seq + frame overhead

    @property
    def qid(self):
        """Expose the inner query id so tracing stays attributable."""
        return getattr(self.payload, "qid", "")


@dataclass(frozen=True)
class ReliableAck:
    """Receiver → sender: sequence number received (possibly again)."""

    seq: int

    def wire_size(self) -> int:
        return 12


@dataclass(frozen=True)
class ReliableConfig:
    """Retransmission policy knobs."""

    base_backoff_s: float = 0.05   #: first retransmit delay
    max_backoff_s: float = 1.0     #: backoff cap (doubling stops here)
    max_retries: int = 10          #: give up after this many retransmits

    def backoff(self, attempt: int) -> float:
        return min(self.base_backoff_s * (2 ** attempt), self.max_backoff_s)


class _Pending:
    __slots__ = ("wrapped", "inner", "attempts", "handle")

    def __init__(self, wrapped: Envelope, inner: Envelope) -> None:
        self.wrapped = wrapped
        self.inner = inner
        self.attempts = 0
        self.handle = None


class ReliableEndpoint:
    """One site's half of the reliable channel.

    The endpoint is transport-agnostic: the owning transport supplies a
    clock, a scheduler (simulator events or a :class:`TimerThread`), a
    raw send hook (which applies the fault plan), and a delivery-up hook
    (which hands deduplicated payloads to the server node).
    """

    def __init__(
        self,
        site: str,
        clock: Callable[[], float],
        scheduler: Callable[[float, Callable[[], None]], Any],
        send_raw: Callable[[Envelope], None],
        deliver_up: Callable[[Envelope], None],
        node: Any = None,
        config: Optional[ReliableConfig] = None,
        on_give_up: Optional[Callable[[Envelope], None]] = None,
    ) -> None:
        _envelope_type()
        self.site = site
        self.clock = clock
        self.scheduler = scheduler
        self.send_raw = send_raw
        self.deliver_up = deliver_up
        self.node = node
        self.config = config if config is not None else ReliableConfig()
        self.on_give_up = on_give_up
        self._lock = threading.Lock()
        self._next_seq: Dict[str, int] = {}
        self._pending: Dict[Tuple[str, int], _Pending] = {}
        self._seen: Dict[str, Set[int]] = {}
        self._closed = False

    # -- sender side -------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Unacked data frames currently buffered at this endpoint."""
        with self._lock:
            return len(self._pending)

    def send(self, env: Envelope) -> None:
        """Wrap ``env`` in a sequenced frame, transmit, and arm retransmit."""
        with self._lock:
            seq = self._next_seq.get(env.dst, 0) + 1
            self._next_seq[env.dst] = seq
            wrapped = Envelope(env.src, env.dst, ReliableData(seq, env.payload), spans=env.spans)
            pending = _Pending(wrapped, env)
            self._pending[(env.dst, seq)] = pending
            self._arm(pending)
        self.send_raw(wrapped)

    def _arm(self, pending: _Pending) -> None:
        delay = self.config.backoff(pending.attempts)
        key = (pending.wrapped.dst, pending.wrapped.payload.seq)
        pending.handle = self.scheduler(delay, lambda: self._retransmit(key))

    def _retransmit(self, key: Tuple[str, int]) -> None:
        with self._lock:
            pending = self._pending.get(key)
            if pending is None or self._closed:
                return
            pending.attempts += 1
            if pending.attempts > self.config.max_retries:
                del self._pending[key]
                give_up, frame = True, None
            else:
                give_up, frame = False, pending.wrapped
                self._arm(pending)
                if self.node is not None:
                    self.node.stats.retransmits += 1
                    if self.node.tracer is not None:
                        spans = pending.wrapped.spans
                        self.node.tracer.emit(
                            self.site, "retransmit", pending.wrapped.payload.qid,
                            parent=spans[0] if spans else None,
                            dst=pending.wrapped.dst, attempt=pending.attempts,
                        )
        if give_up:
            if self.node is not None:
                self.node.stats.reliable_give_ups += 1
            if self.on_give_up is not None:
                self.on_give_up(pending.inner)
        elif frame is not None:
            self.send_raw(frame)

    # -- receiver side -----------------------------------------------------

    def on_wire(self, env: Envelope) -> None:
        """Ingest a :class:`ReliableData` or :class:`ReliableAck` envelope."""
        payload = env.payload
        if isinstance(payload, ReliableAck):
            with self._lock:
                pending = self._pending.pop((env.src, payload.seq), None)
                if pending is not None and pending.handle is not None:
                    pending.handle.cancel()
            return
        if isinstance(payload, ReliableData):
            fresh = False
            with self._lock:
                seen = self._seen.setdefault(env.src, set())
                if payload.seq not in seen:
                    seen.add(payload.seq)
                    fresh = True
                elif self.node is not None:
                    self.node.stats.duplicates_dropped += 1
                    if self.node.tracer is not None:
                        self.node.tracer.emit(
                            self.site, "dup", payload.qid,
                            parent=env.spans[0] if env.spans else None,
                            src=env.src, seq=payload.seq,
                        )
            # Always (re-)ack: the previous ack may have been the lost frame.
            self.send_raw(Envelope(env.dst, env.src, ReliableAck(payload.seq)))
            if fresh:
                self.deliver_up(Envelope(env.src, env.dst, payload.payload, spans=env.spans))
            return
        raise TypeError(f"not a reliable-channel frame: {type(payload).__name__}")

    def close(self) -> None:
        """Drop all buffered state (transport shutdown)."""
        with self._lock:
            self._closed = True
            for pending in self._pending.values():
                if pending.handle is not None:
                    pending.handle.cancel()
            self._pending.clear()
