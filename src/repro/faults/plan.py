"""Deterministic, seed-driven fault schedules.

A :class:`FaultPlan` is the single chaos knob shared by all three
transports.  Each transport, at the point where an envelope would be
handed to the wire, asks :meth:`FaultPlan.decide` what should happen to
it; the answer is a list of delivery copies (empty = dropped, each with
an extra delay).  The plan also carries *structural* faults that the
clusters apply on attachment: timed transient site crashes (with
recovery) and link partitions.

Determinism: all randomness comes from one seeded :class:`random.Random`
consumed in ``decide()`` call order.  Under the discrete-event simulator
that order is itself deterministic, so a (seed, workload) pair replays
exactly.  Under the threaded and socket transports the call order
depends on thread scheduling, so individual decisions are not
reproducible run-to-run — but the configured *rates* are, which is what
the chaos tests assert against.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple


@dataclass(frozen=True)
class LinkFaults:
    """Per-message fault probabilities for one (or every) link."""

    drop: float = 0.0            #: P(message silently lost)
    duplicate: float = 0.0       #: P(message delivered twice)
    reorder: float = 0.0         #: P(message held back behind later traffic)
    delay_jitter_s: float = 0.0  #: uniform extra latency in [0, jitter]

    def validate(self) -> None:
        for name in ("drop", "duplicate", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.delay_jitter_s < 0:
            raise ValueError("delay_jitter_s must be non-negative")


@dataclass(frozen=True)
class SiteCrash:
    """A scheduled transient crash: ``site`` goes down at ``at`` and
    (optionally) recovers at ``recover_at``."""

    site: str
    at: float
    recover_at: Optional[float] = None


@dataclass(frozen=True)
class FaultDecision:
    """What the chaos layer decided for one message.

    ``delays`` holds one extra-latency entry per copy to deliver; an
    empty tuple means the message is dropped.
    """

    delays: Tuple[float, ...]

    @property
    def dropped(self) -> bool:
        return not self.delays

    @property
    def duplicated(self) -> bool:
        return len(self.delays) > 1


_DELIVER_CLEAN = FaultDecision(delays=(0.0,))


class FaultPlan:
    """A reproducible chaos schedule shared by every transport.

    Parameters give the cluster-wide default :class:`LinkFaults`;
    :meth:`link` overrides them for one (symmetric) site pair.  The plan
    keeps its own counters so tests can assert how much chaos actually
    happened, independent of any transport's bookkeeping.
    """

    def __init__(
        self,
        seed: int = 0,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        delay_jitter_s: float = 0.0,
        reorder_window_s: float = 0.05,
    ) -> None:
        self.defaults = LinkFaults(drop, duplicate, reorder, delay_jitter_s)
        self.defaults.validate()
        if reorder_window_s < 0:
            raise ValueError("reorder_window_s must be non-negative")
        self.reorder_window_s = reorder_window_s
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._links: Dict[FrozenSet[str], LinkFaults] = {}
        self._partitions: set = set()
        self.crashes: List[SiteCrash] = []
        # Chaos bookkeeping (plan-side truth; transports keep their own).
        self.decisions = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.partition_drops = 0

    # -- configuration -----------------------------------------------------

    def link(
        self,
        a: str,
        b: str,
        drop: Optional[float] = None,
        duplicate: Optional[float] = None,
        reorder: Optional[float] = None,
        delay_jitter_s: Optional[float] = None,
    ) -> "FaultPlan":
        """Override fault rates for the (symmetric) ``a``–``b`` link."""
        base = self._links.get(frozenset((a, b)), self.defaults)
        faults = LinkFaults(
            drop if drop is not None else base.drop,
            duplicate if duplicate is not None else base.duplicate,
            reorder if reorder is not None else base.reorder,
            delay_jitter_s if delay_jitter_s is not None else base.delay_jitter_s,
        )
        faults.validate()
        self._links[frozenset((a, b))] = faults
        return self

    def crash(self, site: str, at: float, recover_at: Optional[float] = None) -> "FaultPlan":
        """Schedule a transient crash (applied when a cluster adopts the plan)."""
        if at < 0 or (recover_at is not None and recover_at < at):
            raise ValueError(f"bad crash window [{at}, {recover_at}]")
        self.crashes.append(SiteCrash(site, at, recover_at))
        return self

    def partition(self, a: str, b: str) -> "FaultPlan":
        """Sever the ``a``–``b`` link (both directions) until :meth:`heal`."""
        with self._lock:
            self._partitions.add(frozenset((a, b)))
        return self

    def heal(self, a: str, b: str) -> "FaultPlan":
        with self._lock:
            self._partitions.discard(frozenset((a, b)))
        return self

    def is_partitioned(self, a: str, b: str) -> bool:
        with self._lock:
            return frozenset((a, b)) in self._partitions

    # -- the injection hook ------------------------------------------------

    def faults_for(self, src: str, dst: str) -> LinkFaults:
        return self._links.get(frozenset((src, dst)), self.defaults)

    def decide(self, src: str, dst: str) -> FaultDecision:
        """One per-message chaos decision (thread-safe, RNG-consuming)."""
        with self._lock:
            self.decisions += 1
            if frozenset((src, dst)) in self._partitions:
                self.partition_drops += 1
                self.dropped += 1
                return FaultDecision(delays=())
            faults = self._links.get(frozenset((src, dst)), self.defaults)
            if faults == LinkFaults():
                return _DELIVER_CLEAN
            rng = self._rng
            if faults.drop and rng.random() < faults.drop:
                self.dropped += 1
                return FaultDecision(delays=())
            copies = 1
            if faults.duplicate and rng.random() < faults.duplicate:
                copies = 2
                self.duplicated += 1
            delays = []
            for _ in range(copies):
                extra = rng.uniform(0.0, faults.delay_jitter_s) if faults.delay_jitter_s else 0.0
                if faults.reorder and rng.random() < faults.reorder:
                    # Hold this copy back long enough that traffic sent
                    # after it (one reorder window) can overtake it.
                    extra += self.reorder_window_s * rng.uniform(1.0, 2.0)
                delays.append(extra)
            if any(delays):
                self.delayed += 1
            return FaultDecision(delays=tuple(delays))

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, defaults={self.defaults}, "
            f"decisions={self.decisions}, dropped={self.dropped}, "
            f"duplicated={self.duplicated})"
        )
